"""DOT export."""

from repro.graphs.examples import figure3_graph, section41_example
from repro.graphs.synthetic import regular_prefetch_abstraction
from repro.sdf.dot import to_dot
from repro.sdf.graph import SDFGraph


class TestDot:
    def test_basic_structure(self, simple_ring):
        dot = to_dot(simple_ring)
        assert dot.startswith('digraph "ring"')
        assert '"X" -> "Y"' in dot
        assert dot.rstrip().endswith("}")

    def test_execution_times_in_labels(self, simple_ring):
        dot = to_dot(simple_ring)
        assert "X\\n2" in dot

    def test_token_dots(self, simple_ring):
        assert "•" in to_dot(simple_ring)

    def test_many_tokens_abbreviated(self):
        g = SDFGraph()
        g.add_actor("a")
        g.add_edge("a", "a", tokens=50)
        assert "50•" in to_dot(g)

    def test_rates_only_when_multirate(self, simple_ring):
        assert "1/1" not in to_dot(simple_ring)
        dot = to_dot(figure3_graph())
        assert "2/1" in dot

    def test_groups_render_as_clusters(self):
        g = section41_example()
        ab = regular_prefetch_abstraction(6)
        dot = to_dot(g, groups=dict(ab.mapping))
        assert "subgraph" in dot and 'label="A"' in dot and 'label="B"' in dot

    def test_singleton_groups_not_clustered(self, simple_ring):
        dot = to_dot(simple_ring, groups={a: a for a in simple_ring.actor_names})
        assert "subgraph" not in dot

    def test_quotes_escaped(self):
        g = SDFGraph('has"quote')
        g.add_actor("a")
        dot = to_dot(g)
        assert 'digraph "has\\"quote"' in dot

    def test_rankdir(self, simple_ring):
        assert "rankdir=TB;" in to_dot(simple_ring, rankdir="TB")


class TestConversionDot:
    def test_figure4_roles_clustered(self):
        from repro.core.hsdf_conversion import convert_to_hsdf
        from repro.sdf.dot import conversion_to_dot

        conv = convert_to_hsdf(figure3_graph())
        dot = conversion_to_dot(conv)
        assert 'label="matrix"' in dot
        assert 'label="multiplexers"' in dot or 'label="demultiplexers"' in dot

    def test_observers_clustered(self):
        from repro.core.hsdf_conversion import convert_to_hsdf
        from repro.sdf.dot import conversion_to_dot

        conv = convert_to_hsdf(figure3_graph(), observe=[("R", 0)])
        assert 'label="observers"' in conversion_to_dot(conv)
