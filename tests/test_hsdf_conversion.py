"""The compact (symbolic) SDF-to-HSDF conversion of Section 6."""

import random
from fractions import Fraction

import pytest

from repro.analysis.throughput import throughput
from repro.errors import ValidationError
from repro.graphs import TABLE1_CASES
from repro.graphs.examples import figure3_graph, section41_example
from repro.graphs.random_sdf import random_consistent_sdf, random_live_hsdf
from repro.core.hsdf_conversion import convert_to_hsdf, sdf_to_maxplus_matrix
from repro.maxplus.spectral import eigenvalue
from repro.sdf.graph import SDFGraph
from repro.sdf.schedule import is_live


class TestStructure:
    def test_result_is_homogeneous_and_live(self):
        conv = convert_to_hsdf(figure3_graph())
        assert conv.graph.is_homogeneous()
        assert is_live(conv.graph)

    def test_bounds_of_section6(self):
        conv = convert_to_hsdf(figure3_graph())
        n = len(conv.token_ids)
        assert conv.actor_count <= n * (n + 2)
        assert conv.edge_count <= n * (2 * n + 1)
        assert conv.token_count <= n
        assert conv.within_paper_bounds()

    def test_one_initial_token_per_consumed_slot(self):
        conv = convert_to_hsdf(figure3_graph())
        token_edges = [e for e in conv.graph.edges if e.tokens]
        assert all(e.tokens == 1 for e in token_edges)
        assert len(token_edges) == len(conv.token_ids)

    def test_actor_inventory_accounting(self):
        conv = convert_to_hsdf(section41_example())
        assert (
            conv.matrix_actors + conv.mux_actors + conv.demux_actors
            == conv.actor_count
        )
        assert conv.matrix_actors == conv.matrix.finite_entry_count()

    def test_matrix_actor_times_are_coefficients(self):
        conv = convert_to_hsdf(figure3_graph())
        m = conv.matrix
        # g_0_0 realises coefficient M[0][0] = 7 (from the Fig. 3 stamps).
        assert conv.graph.execution_time("g_0_0") == 7
        assert m[0, 0] == 7

    def test_mux_demux_have_zero_time(self):
        conv = convert_to_hsdf(section41_example())
        for actor in conv.graph.actors:
            if actor.name.startswith(("mux_", "dmx_")):
                assert actor.execution_time == 0

    def test_no_tokens_rejected(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        with pytest.raises(Exception):
            convert_to_hsdf(g)

    def test_zero_token_graph_with_live_schedule_rejected(self):
        # A single actor with no edges: schedulable, zero tokens.
        g = SDFGraph()
        g.add_actor("a", 1)
        g.add_edge("a", "a", tokens=1)
        g.remove_edge(g.edges[0].name)
        with pytest.raises((ValidationError, Exception)):
            convert_to_hsdf(g)


class TestEquivalence:
    def test_cycle_time_equals_matrix_eigenvalue(self):
        for factory in (figure3_graph, section41_example):
            conv = convert_to_hsdf(factory())
            lam = eigenvalue(conv.matrix)
            assert throughput(conv.graph, method="hsdf").cycle_time == lam

    def test_cycle_time_matches_original_iteration_period(self):
        g = section41_example()
        conv = convert_to_hsdf(g)
        assert (
            throughput(conv.graph, method="hsdf").cycle_time
            == throughput(g, method="symbolic").cycle_time
        )

    def test_simulating_the_compact_graph_agrees(self):
        g = figure3_graph()
        conv = convert_to_hsdf(g)
        sim = throughput(conv.graph, method="simulation")
        sym = throughput(g, method="symbolic")
        assert sim.cycle_time == sym.cycle_time

    @pytest.mark.parametrize("seed", range(10))
    def test_random_sdf_equivalence(self, seed):
        rng = random.Random(seed)
        g = random_consistent_sdf(rng, n_actors=5, extra_edges=3, max_repetition=4)
        conv = convert_to_hsdf(g)
        assert conv.within_paper_bounds()
        assert (
            throughput(conv.graph, method="hsdf").cycle_time
            == throughput(g, method="symbolic").cycle_time
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_random_hsdf_equivalence(self, seed):
        rng = random.Random(500 + seed)
        g = random_live_hsdf(rng, n_actors=6, extra_edges=5)
        conv = convert_to_hsdf(g)
        assert (
            throughput(conv.graph, method="hsdf").cycle_time
            == throughput(g, method="hsdf").cycle_time
        )

    @pytest.mark.parametrize(
        "case",
        [c for c in TABLE1_CASES if c.paper_traditional <= 1200],
        ids=lambda c: c.name,
    )
    def test_benchmark_equivalence_vs_traditional(self, case):
        from repro.sdf.transform import traditional_hsdf

        g = case.build()
        compact = convert_to_hsdf(g)
        assert (
            throughput(compact.graph, method="hsdf").cycle_time
            == throughput(traditional_hsdf(g), method="hsdf").cycle_time
        )


class TestElisionAblation:
    def test_unelided_structure_is_larger_but_equivalent(self):
        g = section41_example()
        lean = convert_to_hsdf(g, elide_multiplexers=True)
        full = convert_to_hsdf(g, elide_multiplexers=False)
        assert full.actor_count >= lean.actor_count
        assert (
            throughput(full.graph, method="hsdf").cycle_time
            == throughput(lean.graph, method="hsdf").cycle_time
        )

    def test_unelided_has_all_mux_demux(self):
        g = figure3_graph()
        full = convert_to_hsdf(g, elide_multiplexers=False)
        n = len(full.token_ids)
        assert full.mux_actors == n
        # Every consumed token gets its demux (unconsumed ones never need one).
        assert full.demux_actors == len(
            {j for (j, k) in _finite_entries(full.matrix)}
        )

    def test_unelided_still_within_bounds(self):
        full = convert_to_hsdf(figure3_graph(), elide_multiplexers=False)
        assert full.within_paper_bounds()


def _finite_entries(matrix):
    from repro.maxplus.algebra import EPSILON

    for k in range(matrix.nrows):
        for j in range(matrix.ncols):
            if matrix[k, j] != EPSILON:
                yield (j, k)


class TestMetadata:
    def test_token_source_names_exist(self):
        conv = convert_to_hsdf(figure3_graph())
        for actor in conv.token_source.values():
            assert conv.graph.has_actor(actor)

    def test_token_entry_names_exist(self):
        conv = convert_to_hsdf(figure3_graph())
        for actor in conv.token_entry.values():
            assert conv.graph.has_actor(actor)

    def test_reuses_precomputed_iteration(self):
        g = figure3_graph()
        iteration = sdf_to_maxplus_matrix(g)
        conv = convert_to_hsdf(g, iteration=iteration)
        assert conv.matrix is iteration.matrix


class TestLatencyPreservation:
    """Section 6 claims 'same throughput and latency' — check latency."""

    @pytest.mark.parametrize(
        "factory", [figure3_graph, section41_example], ids=["fig3", "fig1"]
    )
    def test_token_availability_times_preserved(self, factory):
        from repro.analysis.latency import latency

        g = factory()
        conv = convert_to_hsdf(g)
        original = latency(g)
        compact = latency(conv.graph)
        # Token slot k's next availability in the compact graph equals
        # the original's (slots whose consumer was a sink have no loop in
        # the compact graph and are absent there).
        kept = [
            k for k in range(len(conv.token_ids)) if k in conv.token_entry
        ]
        for position, k in enumerate(kept):
            assert compact.token_times[position] == original.token_times[k]

    @pytest.mark.parametrize("seed", range(5))
    def test_latency_on_random_graphs(self, seed):
        from repro.analysis.latency import latency

        rng = random.Random(900 + seed)
        g = random_consistent_sdf(rng, n_actors=4, extra_edges=2, max_repetition=3)
        conv = convert_to_hsdf(g)
        original = latency(g)
        compact = latency(conv.graph)
        kept = [k for k in range(len(conv.token_ids)) if k in conv.token_entry]
        for position, k in enumerate(kept):
            assert compact.token_times[position] == original.token_times[k]
