"""Reusable differential oracle: numpy kernels vs the exact reference.

The kernel contract (src/repro/kernels, docs/kernels.md) is *bit
identity*: the vectorized numpy backend must return exactly what the
pure-Fraction reference returns — same Fractions, same witnesses, same
error types with the same messages — because its float search phase is
always followed by exact re-derivation and certification.

:func:`assert_backends_agree` checks that whole contract for one graph
and one method and is shared by the registry-wide and property-based
suites in ``test_kernel_oracle.py``.
"""

from __future__ import annotations

from repro.analysis.throughput import throughput
from repro.errors import ReproError
from repro.kernels import float_tolerance
from repro.obs.provenance import verify_witness


def run_kernel(graph, method: str, kernel: str):
    """Run one backend; return ``(result, error)`` with exactly one set."""
    try:
        return throughput(graph, method=method, kernel=kernel), None
    except ReproError as error:
        return None, error


def assert_backends_agree(graph, method: str, expect_fallback: bool = False):
    """Assert full numpy/exact agreement on ``graph`` for ``method``.

    Checks, in order: error agreement (same type, same message when both
    raise), exact equality of cycle time / repetition vector / per-actor
    rates, the documented float-tolerance bound, provenance ``kernel``
    labelling (``expect_fallback=True`` demands the numpy run degraded
    to exact and recorded why), and that every attached witness
    re-verifies against the original graph to the agreed cycle time.

    Returns ``(numpy_result, exact_result)`` — both ``None`` when the
    backends agreed by raising.
    """
    numpy_result, numpy_error = run_kernel(graph, method, "numpy")
    exact_result, exact_error = run_kernel(graph, method, "exact")

    if exact_error is not None:
        assert numpy_error is not None, (
            f"exact raised {type(exact_error).__name__} but numpy "
            f"returned {numpy_result!r}"
        )
        assert type(numpy_error) is type(exact_error), (
            f"error types diverge: numpy {type(numpy_error).__name__}, "
            f"exact {type(exact_error).__name__}"
        )
        assert str(numpy_error) == str(exact_error)
        return None, None
    assert numpy_error is None, (
        f"numpy raised {type(numpy_error).__name__}: {numpy_error} "
        f"but exact returned {exact_result.cycle_time}"
    )

    # Bit-identical analysis outputs (Fraction ==, not approximate).
    assert numpy_result.cycle_time == exact_result.cycle_time
    assert numpy_result.repetition == exact_result.repetition
    assert numpy_result.unbounded == exact_result.unbounded
    if not exact_result.unbounded:
        assert numpy_result.per_actor == exact_result.per_actor
        # Tolerance policy: the float view of the agreed value sits
        # within the documented bound of the exact Fraction.
        drift = abs(
            float(numpy_result.cycle_time) - float(exact_result.cycle_time)
        )
        assert drift <= float_tolerance(exact_result.cycle_time)

    numpy_record = numpy_result.provenance
    exact_record = exact_result.provenance
    assert exact_record is not None and numpy_record is not None
    assert exact_record.kernel == "exact"
    assert exact_record.degradation_reason is None
    if expect_fallback:
        assert numpy_record.kernel == "exact"
        assert numpy_record.degradation_reason is not None
        assert "fell back to exact" in numpy_record.degradation_reason
    else:
        assert numpy_record.kernel == "numpy"
        assert numpy_record.degradation_reason is None

    # Witness parity: both backends certify, or neither can.
    assert (numpy_record.witness is None) == (exact_record.witness is None)
    for record in (numpy_record, exact_record):
        if record.witness is not None:
            mean = verify_witness(graph, record)
            assert mean == exact_result.cycle_time

    return numpy_result, exact_result
