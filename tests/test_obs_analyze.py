"""Trace analytics: forest reconstruction, self time, critical paths.

Two synthetic fixtures with hand-computable timings drive the exact
arithmetic (self-time decomposition, percentile table, critical path,
collapsed stacks); a real :class:`~repro.obs.trace.Tracer` round-trip
pins the two export formats to one summary; and the process-backend
batch run proves worker lanes adopted into the parent span log come
back out with their self time attributed to the right process.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.cache import AnalysisCache, set_default_cache
from repro.cli import main
from repro.obs.analyze import (
    TRACE_SUMMARY_SCHEMA,
    build_forest,
    collapsed_stacks,
    load_trace,
    render_summary_text,
    summarize_files,
    summarize_traces,
    write_collapsed,
)
from repro.obs.check import validate_collapsed, validate_trace_summary
from repro.obs.metrics import MetricsRegistry, set_default_registry
from repro.obs.trace import Tracer, span


@pytest.fixture(autouse=True)
def fresh_observability_state():
    """Isolate from the process-global registry and cache (a warm
    default cache would swallow the spans the batch test asserts)."""
    previous_registry = set_default_registry(MetricsRegistry())
    previous_cache = set_default_cache(AnalysisCache())
    try:
        yield
    finally:
        set_default_registry(previous_registry)
        set_default_cache(previous_cache)


def _row(id, parent, name, start, end, pid=1, tid=0, **args):
    return {
        "id": id, "parent": parent, "name": name, "pid": pid, "tid": tid,
        "start": start, "end": end,
        "dur": None if end is None else end - start,
        "cpu": None, "mem_peak": 0, "args": args,
    }


#: throughput(modem): 1.0s root, 0.2s repetition, 0.6s mcm via numpy —
#: root self time is the remaining 0.2s.
FOREST = [
    _row("a", None, "throughput", 0.0, 1.0, graph="modem"),
    _row("b", "a", "repetition-vector", 0.0, 0.2),
    _row("c", "a", "mcm-eigenvalue", 0.25, 0.85, kernel_used="numpy"),
]


def _chrome_equivalent():
    """The same forest as Chrome X events — no parent links, nesting
    encoded purely by interval containment, plus M lane metadata."""
    events = [
        {"name": "throughput", "ph": "X", "ts": 0.0, "dur": 1_000_000.0,
         "pid": 1, "tid": 0, "args": {"graph": "modem"}},
        {"name": "repetition-vector", "ph": "X", "ts": 0.0, "dur": 200_000.0,
         "pid": 1, "tid": 0, "args": {}},
        {"name": "mcm-eigenvalue", "ph": "X", "ts": 250_000.0,
         "dur": 600_000.0, "pid": 1, "tid": 0,
         "args": {"kernel_used": "numpy"}},
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "main"}},
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "repro"}},
    ]
    return {"traceEvents": events, "displayTimeUnit": "ms"}


class TestForest:
    def test_self_time_decomposition(self):
        roots = build_forest(FOREST)
        (root,) = roots
        assert root.name == "throughput"
        assert {c.name for c in root.children} == {
            "repetition-vector", "mcm-eigenvalue"}
        assert root.self_seconds == pytest.approx(0.2)

    def test_overlapping_children_floor_self_at_zero(self):
        rows = [
            _row("a", None, "parent", 0.0, 1.0),
            _row("b", "a", "left", 0.0, 0.8),
            _row("c", "a", "right", 0.1, 0.9),
        ]
        (root,) = build_forest(rows)
        assert root.self_seconds == 0.0

    def test_open_spans_skipped_and_orphans_become_roots(self):
        rows = FOREST + [
            _row("open", "a", "unfinished", 0.9, None),
            _row("lost", "no-such-parent", "orphan", 2.0, 2.5),
        ]
        summary = summarize_traces([("t", rows)])
        assert summary["open_spans_skipped"] == 1
        assert summary["roots"] == 2
        assert summary["spans"] == 4  # open span excluded


class TestSummary:
    def test_stage_keys_inherit_graph_and_kernel(self):
        summary = summarize_traces([("t", FOREST)])
        keys = {(r["stage"], r["graph"], r["kernel"])
                for r in summary["stages"]}
        assert keys == {
            ("throughput", "modem", None),
            ("repetition-vector", "modem", None),  # graph from ancestor
            ("mcm-eigenvalue", "modem", "numpy"),
        }
        assert summary["schema"] == TRACE_SUMMARY_SCHEMA
        assert summary["wall_seconds"] == pytest.approx(1.0)
        total_self = sum(r["self_seconds"] for r in summary["stages"])
        assert total_self == pytest.approx(1.0)  # partition of the root

    def test_validator_accepts_the_summary(self):
        summary = summarize_traces([("t", FOREST)])
        verdict = validate_trace_summary(summary)
        assert verdict["spans"] == 3

    def test_critical_path_follows_dominant_child(self):
        summary = summarize_traces([("t", FOREST)])
        path = summary["critical_path"]
        assert [h["name"] for h in path] == ["throughput", "mcm-eigenvalue"]
        assert [h["depth"] for h in path] == [0, 1]
        assert summary["critical_path_seconds"] == pytest.approx(1.0)
        assert summary["critical_path_source"] == "t"

    def test_percentiles_nearest_rank_across_runs(self):
        rows = [
            _row(f"r{i}", None, "analyse", float(i), float(i) + i / 1000.0)
            for i in range(1, 11)  # durations 1ms .. 10ms
        ]
        summary = summarize_traces([("t", rows)])
        (stage,) = summary["stages"]
        assert stage["count"] == 10
        assert stage["p50_seconds"] == pytest.approx(0.005)
        assert stage["p90_seconds"] == pytest.approx(0.009)
        assert stage["p99_seconds"] == pytest.approx(0.010)
        assert stage["max_seconds"] == pytest.approx(0.010)

    def test_chrome_containment_matches_explicit_parents(self, tmp_path):
        chrome = tmp_path / "t.json"
        chrome.write_text(json.dumps(_chrome_equivalent()))
        rows = load_trace(chrome)
        assert {r["name"]: r["parent"] is not None for r in rows} == {
            "throughput": False,
            "repetition-vector": True,
            "mcm-eigenvalue": True,
        }
        from_chrome = summarize_traces([("chrome", rows)])
        from_jsonl = summarize_traces([("jsonl", FOREST)])
        strip = lambda s: [
            {k: r[k] for k in ("stage", "graph", "kernel", "count")}
            for r in s["stages"]
        ]
        assert strip(from_chrome) == strip(from_jsonl)
        assert from_chrome["wall_seconds"] == pytest.approx(
            from_jsonl["wall_seconds"])

    def test_text_rendering_mentions_the_hot_stage(self):
        text = render_summary_text(summarize_traces([("t", FOREST)]))
        assert "mcm-eigenvalue" in text
        assert "critical path" in text


class TestCollapsedStacks:
    def test_exact_lines_and_validator(self, tmp_path):
        lines = collapsed_stacks([("t", FOREST)])
        assert lines == [
            "throughput 200000",
            "throughput;mcm-eigenvalue 600000",
            "throughput;repetition-vector 200000",
        ]
        out = tmp_path / "trace.folded"
        assert write_collapsed([_jsonl(tmp_path, FOREST)], out) == 3
        verdict = validate_collapsed(out.read_text())
        assert verdict == {"stacks": 3, "frames": 5}

    def test_semicolons_in_names_are_sanitised(self):
        rows = [_row("a", None, "odd;name", 0.0, 0.5)]
        (line,) = collapsed_stacks([("t", rows)])
        assert line == "odd:name 500000"

    def test_zero_self_stacks_dropped(self):
        rows = [
            _row("a", None, "parent", 0.0, 1.0),
            _row("b", "a", "child", 0.0, 1.0),
        ]
        lines = collapsed_stacks([("t", rows)])
        assert lines == ["parent;child 1000000"]


def _jsonl(tmp_path, rows):
    path = tmp_path / "spans.jsonl"
    path.write_text("".join(json.dumps(r) + "\n" for r in rows))
    return path


class TestTracerRoundTrip:
    def test_both_export_formats_fold_into_one_summary(self, tmp_path):
        tracer = Tracer()
        with tracer:
            with span("analyse", graph="figure3"):
                with span("repetition-vector"):
                    pass
                with span("mcm-eigenvalue", kernel_used="exact"):
                    pass
        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        tracer.write_jsonl(jsonl)
        tracer.write_chrome_trace(chrome)

        summary = summarize_files([jsonl, chrome])
        assert summary["sources"] == [str(jsonl), str(chrome)]
        assert summary["spans"] == 6  # each format contributes the forest
        keys = {(r["stage"], r["graph"], r["kernel"])
                for r in summary["stages"]}
        assert keys == {
            ("analyse", "figure3", None),
            ("repetition-vector", "figure3", None),
            ("mcm-eigenvalue", "figure3", "exact"),
        }
        validate_trace_summary(summary)


class TestProcessBatchLanes:
    def test_adopted_worker_lanes_attribute_self_time(self, tmp_path):
        """Satellite: span-JSONL round-trip under the process backend.

        ``run_batch`` adopts each worker's spans into the parent tracer;
        the span log must carry the workers' own pids through export so
        the analyzer can attribute per-lane self time — a batch where
        every worker lane shows zero self time means adopt() lost them.
        """
        trace = tmp_path / "batch.jsonl"
        assert main(["batch", "--registry", "--backend", "process",
                     "--workers", "2", "--trace", str(trace)]) == 0

        rows = load_trace(trace)
        pids = {r["pid"] for r in rows}
        assert len(pids) >= 2, "worker spans must keep their own pid"

        summary = summarize_traces([(str(trace), rows)])
        validate_trace_summary(summary)
        assert summary["processes"] == len(pids)

        import os
        parent = os.getpid()
        worker_lanes = [l for l in summary["lanes"] if l["pid"] != parent]
        assert worker_lanes, "no worker lanes in the summary"
        # The analyse work happens *in* the workers: each worker lane
        # carries spans and positive self time.
        for lane in worker_lanes:
            assert lane["spans"] > 0
            assert lane["self_seconds"] > 0.0
        analyse_pids = {r["pid"] for r in rows if r["name"] == "analyse"}
        assert analyse_pids <= pids - {parent}
        # Lane self times are a partition too: summed over lanes they
        # equal the summed stage self times.
        lane_self = sum(l["self_seconds"] for l in summary["lanes"])
        stage_self = sum(r["self_seconds"] for r in summary["stages"])
        assert lane_self == pytest.approx(stage_self)

    def test_chrome_batch_trace_survives_containment_reconstruction(
            self, tmp_path):
        """The CI smoke case: a Chrome batch trace has no parent links,
        so the analyzer re-derives nesting by containment per lane.
        Jobs adopted from per-job worker tracers must land at their true
        position on the parent timeline (epoch rebasing) — otherwise
        every job sits at t≈0, containment stacks them into a fictional
        tower and the self-time partition invariant breaks.
        """
        trace = tmp_path / "batch.json"
        assert main(["batch", "--registry", "--backend", "process",
                     "--workers", "2", "--trace", str(trace)]) == 0
        summary = summarize_files([trace])
        validate_trace_summary(summary)
        total_self = sum(r["self_seconds"] for r in summary["stages"])
        assert total_self <= summary["wall_seconds"] + 1e-9
        # Sibling jobs on one worker lane stay siblings: 8 registry
        # graphs means 8 `analyse` spans, one stage row per graph.
        analyse = [r for r in summary["stages"] if r["stage"] == "analyse"]
        assert sum(r["count"] for r in analyse) == 8
        assert len(analyse) == 8  # keyed by the inherited graph name
