"""Unit tests for the numpy kernel layer (:mod:`repro.kernels`).

Covers the pieces the differential oracle exercises only indirectly:
the CSR array layout, kernel selection and the no-numpy guard, the
documented tolerance policy, exact certification, the numerical-guard
fallback (with its provenance and metrics trail) and the observability
surface (span attributes, provenance round trip, schema validation).
"""

from __future__ import annotations

import sys
from fractions import Fraction

import pytest

np = pytest.importorskip("numpy")

from repro.analysis.throughput import throughput
from repro.kernels import (
    KernelUnavailableError,
    NumericalGuardError,
    available_kernels,
    check_candidate,
    float_tolerance,
    numpy_available,
    resolve_kernel,
)
from repro.kernels.arraygraph import ArrayGraph
from repro.kernels.backend import (
    MAX_EXACT_FLOAT_SUM,
    RELATIVE_TOLERANCE,
    _reset_numpy_cache,
)
from repro.kernels.mcm import certify_maximum_ratio, karp_mcm_numpy
from repro.mcm.graphlib import RatioGraph
from repro.obs.check import SchemaError, validate_provenance
from repro.obs.metrics import MetricsRegistry, set_default_registry
from repro.obs.provenance import ProvenanceRecord
from repro.obs.trace import Tracer
from repro.sdf.graph import SDFGraph


def _ring_ratio_graph():
    """w/t ratios: cycle a->b->a has mean (3+5)/2 = 4, self-loop 7/2."""
    g = RatioGraph()
    for node in ("a", "b"):
        g.add_node(node)
    g.add_edge("a", "b", Fraction(3), 1, key="ab")
    g.add_edge("b", "a", Fraction(5), 1, key="ba")
    g.add_edge("a", "a", Fraction(7), 2, key="aa")
    return g


def _small_sdf(execution_time=3):
    g = SDFGraph("kernel-unit")
    g.add_actor("x", execution_time=execution_time)
    g.add_actor("y", execution_time=1)
    for name in ("x", "y"):
        g.add_edge(name, name, tokens=1, name=f"self_{name}")
    g.add_edge("x", "y")
    g.add_edge("y", "x", tokens=1)
    return g


@pytest.fixture
def fresh_registry():
    registry = MetricsRegistry()
    previous = set_default_registry(registry)
    try:
        yield registry
    finally:
        set_default_registry(previous)


class TestArrayGraph:
    def test_csr_layout(self):
        ag = ArrayGraph.from_ratio_graph(_ring_ratio_graph())
        assert ag.nodes == ["a", "b"]
        assert ag.node_count == 2 and ag.edge_count == 3
        # Edge arrays follow insertion order: ab, ba, aa.
        assert ag.src.tolist() == [0, 1, 0]
        assert ag.dst.tolist() == [1, 0, 0]
        assert ag.transits.tolist() == [1, 1, 2]
        assert ag.weight_ints == [3, 5, 7]
        assert ag.scale == 1
        # In-CSR groups edges by target; out-CSR by source.
        assert ag.in_indptr.tolist() == [0, 2, 3]
        assert sorted(ag.in_order[:2].tolist()) == [1, 2]  # into a
        assert ag.in_order[2] == 0                          # into b
        assert ag.out_indptr.tolist() == [0, 2, 3]
        assert sorted(ag.out_order[:2].tolist()) == [0, 2]  # out of a

    def test_fractional_weights_share_one_scale(self):
        g = RatioGraph()
        g.add_node("a")
        g.add_edge("a", "a", Fraction(1, 2), 1, key="u")
        g.add_edge("a", "a", Fraction(2, 3), 1, key="v")
        ag = ArrayGraph.from_ratio_graph(g)
        assert ag.scale == 6
        assert sorted(ag.weight_ints) == [3, 4]
        assert ag.exact_weight(0) == Fraction(1, 2)

    def test_oversized_weights_trip_the_float_guard(self):
        g = RatioGraph()
        g.add_node("a")
        g.add_edge("a", "a", Fraction(MAX_EXACT_FLOAT_SUM), 1, key="big")
        with pytest.raises(NumericalGuardError):
            ArrayGraph.from_ratio_graph(g)


class TestKernelSelection:
    def test_resolve(self):
        assert resolve_kernel("exact") == "exact"
        assert resolve_kernel("numpy") == "numpy"
        assert resolve_kernel("auto") == "numpy"
        assert available_kernels() == ("numpy", "exact")

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel("cuda")
        with pytest.raises(ValueError, match="unknown kernel"):
            throughput(_small_sdf(), kernel="cuda")

    def test_without_numpy_auto_degrades_and_explicit_raises(self, monkeypatch):
        """The analysis stack must run on hosts without numpy."""
        monkeypatch.setitem(sys.modules, "numpy", None)  # import -> ImportError
        _reset_numpy_cache()
        try:
            assert not numpy_available()
            assert available_kernels() == ("exact",)
            assert resolve_kernel("auto") == "exact"
            with pytest.raises(KernelUnavailableError):
                resolve_kernel("numpy")
            with pytest.raises(KernelUnavailableError):
                throughput(_small_sdf(), kernel="numpy")
            result = throughput(_small_sdf(), kernel="auto")
            assert result.cycle_time == Fraction(4)
            assert result.provenance.kernel == "exact"
            assert result.provenance.degradation_reason is None
        finally:
            _reset_numpy_cache()


class TestTolerancePolicy:
    def test_tolerance_is_relative_with_absolute_floor(self):
        assert float_tolerance(Fraction(0)) == RELATIVE_TOLERANCE
        assert float_tolerance(Fraction(1, 2)) == RELATIVE_TOLERANCE
        assert float_tolerance(Fraction(1000)) == RELATIVE_TOLERANCE * 1000

    def test_check_candidate(self):
        check_candidate(4.0, Fraction(4), what="unit")
        check_candidate(4.0 + 2.0 ** -45, Fraction(4), what="unit")
        with pytest.raises(NumericalGuardError, match="deviates"):
            check_candidate(4.0 + 1e-9, Fraction(4), what="unit")
        with pytest.raises(NumericalGuardError):  # NaN never passes
            check_candidate(float("nan"), Fraction(4), what="unit")


class TestCertification:
    def test_true_maximum_certifies(self):
        ag = ArrayGraph.from_ratio_graph(_ring_ratio_graph())
        certify_maximum_ratio(ag, Fraction(4))

    def test_underestimate_is_rejected(self):
        ag = ArrayGraph.from_ratio_graph(_ring_ratio_graph())
        with pytest.raises(NumericalGuardError, match="certif"):
            certify_maximum_ratio(ag, Fraction(7, 2))

    def test_karp_kernel_returns_exact_fractions(self):
        g = RatioGraph()  # unit transits: Karp's precondition
        for node in ("a", "b"):
            g.add_node(node)
        g.add_edge("a", "b", Fraction(3), 1, key="ab")
        g.add_edge("b", "a", Fraction(5), 1, key="ba")
        g.add_edge("a", "a", Fraction(7, 2), 1, key="aa")
        result = karp_mcm_numpy(g)
        assert result.value == Fraction(4)
        assert isinstance(result.value, Fraction)
        assert {e.key for e in result.cycle} == {"ab", "ba"}


class TestGuardFallback:
    def test_oversized_graph_falls_back_to_exact(self, fresh_registry):
        g = _small_sdf(execution_time=MAX_EXACT_FLOAT_SUM)
        result = throughput(g, kernel="numpy")
        assert result.cycle_time == Fraction(MAX_EXACT_FLOAT_SUM + 1)
        record = result.provenance
        assert record.kernel == "exact"
        assert record.degradation_reason is not None
        assert "fell back to exact" in record.degradation_reason
        counters = fresh_registry
        assert counters.value(
            "repro_kernel_selected_total", kernel="numpy", method="symbolic"
        ) == 1
        assert counters.value(
            "repro_kernel_fallback_total", method="symbolic"
        ) == 1

    def test_clean_run_records_no_fallback(self, fresh_registry):
        result = throughput(_small_sdf(), kernel="numpy")
        assert result.provenance.kernel == "numpy"
        assert result.provenance.degradation_reason is None
        assert fresh_registry.value(
            "repro_kernel_selected_total", kernel="numpy", method="symbolic"
        ) == 1
        assert fresh_registry.value(
            "repro_kernel_fallback_total", method="symbolic"
        ) is None


class TestObservability:
    def test_spans_carry_kernel_attributes(self):
        with Tracer() as tracer:
            throughput(_small_sdf(), kernel="numpy")
        spans = {s.name: s for s in tracer.spans()}
        assert spans["throughput"].args["kernel"] == "numpy"
        assert spans["throughput"].args["kernel_used"] == "numpy"
        assert spans["mcm-eigenvalue"].args["kernel_used"] == "numpy"

    def test_fallback_visible_on_spans(self):
        with Tracer() as tracer:
            throughput(
                _small_sdf(execution_time=MAX_EXACT_FLOAT_SUM),
                kernel="numpy",
            )
        spans = {s.name: s for s in tracer.spans()}
        assert spans["throughput"].args["kernel"] == "numpy"   # selected
        assert spans["throughput"].args["kernel_used"] == "exact"
        assert spans["mcm-eigenvalue"].args["kernel_used"] == "exact"

    def test_provenance_kernel_round_trip(self):
        record = throughput(_small_sdf(), kernel="numpy").provenance
        doc = record.as_dict()
        assert doc["kernel"] == "numpy"
        restored = ProvenanceRecord.from_dict(doc)
        assert restored.kernel == "numpy"
        validate_provenance(doc)

    def test_check_rejects_malformed_kernel_field(self):
        doc = throughput(_small_sdf(), kernel="exact").provenance.as_dict()
        assert doc["kernel"] == "exact"
        validate_provenance(doc)
        doc["kernel"] = None  # legacy records carry no kernel: fine
        validate_provenance(doc)
        doc["kernel"] = ""
        with pytest.raises(SchemaError, match="kernel"):
            validate_provenance(doc)
        doc["kernel"] = 7
        with pytest.raises(SchemaError, match="kernel"):
            validate_provenance(doc)
