"""Cross-cutting property-based tests of the paper's theorems.

These are the executable counterparts of Propositions 1-4 and Theorem 1
on *randomly generated* graphs and abstractions — the strongest evidence
short of the formal proof that the implementation is faithful.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.throughput import throughput
from repro.core.abstraction import Abstraction, abstract_graph
from repro.core.conservativity import dominates, sigma_map, verify_abstraction
from repro.core.hsdf_conversion import convert_to_hsdf
from repro.core.pruning import prune_redundant_edges
from repro.core.unfolding import unfold
from repro.errors import NoAbstractionFoundError, NotAbstractableError
from repro.core.grouping import discover_abstraction
from repro.graphs.random_sdf import random_consistent_sdf, random_live_hsdf


def random_abstraction(rng: random.Random, graph) -> Abstraction:
    """A random valid abstraction of a live HSDF graph.

    Random partition of the actors, then index assignment via the
    grouping engine's greedy topological pass (which guarantees the
    Definition-3 edge condition whenever one exists).
    """
    from repro.core.grouping import _assign_indices

    actors = graph.actor_names
    n_groups = rng.randint(1, len(actors))
    group_of = {a: f"G{rng.randrange(n_groups)}" for a in actors}
    index = _assign_indices(graph, group_of)
    return Abstraction(mapping=group_of, index=index)


class TestProposition1Randomised:
    """Dominance implies slower-or-equal throughput."""

    @pytest.mark.parametrize("seed", range(12))
    def test_slowdown_is_conservative(self, seed):
        rng = random.Random(seed)
        g = random_live_hsdf(rng, n_actors=rng.randint(2, 6), extra_edges=4)
        slower = g.copy()
        for actor in slower.actor_names:
            if rng.random() < 0.5:
                slower.set_execution_time(
                    actor, slower.execution_time(actor) + rng.randint(1, 5)
                )
        assert dominates(slower, g)
        assert (
            throughput(slower, method="hsdf").cycle_time
            >= throughput(g, method="hsdf").cycle_time
        )

    @pytest.mark.parametrize("seed", range(12))
    def test_token_removal_is_conservative(self, seed):
        rng = random.Random(100 + seed)
        g = random_live_hsdf(rng, n_actors=rng.randint(2, 6), extra_edges=4)
        stricter = g.copy()
        # Removing a token from a non-critical edge may deadlock the
        # graph; only drop from edges with >= 2 tokens to stay safe-ish,
        # and skip the case when it still deadlocks.
        for e in stricter.edges:
            if e.tokens >= 2 and rng.random() < 0.5:
                stricter.set_tokens(e.name, e.tokens - 1)
        from repro.sdf.schedule import is_live

        if not is_live(stricter):
            pytest.skip("token removal deadlocked this sample")
        assert dominates(stricter, g)
        assert (
            throughput(stricter, method="hsdf").cycle_time
            >= throughput(g, method="hsdf").cycle_time
        )


class TestTheorem1Randomised:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_abstractions_are_conservative(self, seed):
        rng = random.Random(2000 + seed)
        g = random_live_hsdf(rng, n_actors=rng.randint(2, 7), extra_edges=5)
        try:
            ab = random_abstraction(rng, g)
            ab.validate(g)
        except (NotAbstractableError, NoAbstractionFoundError):
            pytest.skip("sampled partition admits no valid abstraction")
        cert = verify_abstraction(g, ab)
        assert cert.dominance
        assert cert.conservative

    @pytest.mark.parametrize("seed", range(10))
    def test_discovered_abstractions_are_conservative(self, seed):
        rng = random.Random(3000 + seed)
        g = random_live_hsdf(rng, n_actors=6, extra_edges=4)
        try:
            ab = discover_abstraction(g, strategy="structural")
        except (NoAbstractionFoundError, NotAbstractableError):
            pytest.skip("no structural grouping in this sample")
        cert = verify_abstraction(g, ab)
        assert cert.conservative


class TestPruningInvariance:
    @pytest.mark.parametrize("seed", range(10))
    def test_pruning_preserves_cycle_time(self, seed):
        rng = random.Random(4000 + seed)
        g = random_live_hsdf(rng, n_actors=5, extra_edges=8)
        pruned = prune_redundant_edges(g)
        assert (
            throughput(pruned, method="hsdf").cycle_time
            == throughput(g, method="hsdf").cycle_time
        )


class TestConversionInvariance:
    @pytest.mark.parametrize("seed", range(10))
    def test_unfolding_of_conversion_consistent(self, seed):
        # Compose the two reductions: compact-convert, then unfold the
        # result; cycle time must scale exactly by N (Prop. 2 applied to
        # the converted graph).
        rng = random.Random(5000 + seed)
        g = random_consistent_sdf(rng, n_actors=4, extra_edges=2, max_repetition=3)
        conv = convert_to_hsdf(g)
        base = throughput(conv.graph, method="hsdf").cycle_time
        n = rng.randint(2, 4)
        scaled = throughput(unfold(conv.graph, n), method="hsdf").cycle_time
        assert scaled == n * base
