"""Every devlint rule: a triggering and a clean fixture per facet.

Fixtures are small source snippets compiled with :mod:`ast` through
``lint_source``; the *path* given to the engine places each snippet in
(or out of) the module scopes the contracts cover, so the same snippet
can assert both the positive and the scope-exemption case.
"""

import textwrap

from repro.devlint import lint_source
from repro.lint.config import LintConfig


def run(source, path="src/repro/mcm/fixture.py", config=None):
    return lint_source(textwrap.dedent(source), path=path, config=config)


def codes(report):
    return set(report.codes())


def only(report, code):
    found = report.by_code(code)
    assert found, f"expected a {code} finding, got {codes(report)}"
    return found


# ---------------------------------------------------------------------------
# exactness-discipline
# ---------------------------------------------------------------------------


class TestExactnessDiscipline:
    def test_float_cast_in_exact_module_fires(self):
        report = run(
            """
            def mean(value):
                return float(value)
            """
        )
        (finding,) = only(report, "exactness-discipline")
        assert finding.line == 3
        assert finding.actors == ("mean",)
        assert finding.severity == "error"

    def test_float_literal_arithmetic_fires(self):
        report = run(
            """
            def half(value):
                return value * 0.5
            """
        )
        assert "exactness-discipline" in codes(report)

    def test_infinity_sentinel_is_exempt(self):
        report = run(
            """
            EPSILON = float("-inf")
            TOP = float("inf")
            """
        )
        assert "exactness-discipline" not in codes(report)

    def test_outside_exact_scope_is_clean(self):
        report = run(
            """
            def mean(value):
                return float(value) * 0.5
            """,
            path="src/repro/obs/fixture.py",
        )
        assert "exactness-discipline" not in codes(report)

    def test_kernel_float_equality_fires(self):
        report = run(
            """
            def accept(candidate):
                if candidate == 0.5:
                    return True
            """,
            path="src/repro/kernels/fixture.py",
        )
        (finding,) = only(report, "exactness-discipline")
        assert finding.line == 3

    def test_kernel_isclose_fires(self):
        report = run(
            """
            import math

            def accept(a, b):
                return math.isclose(a, b)
            """,
            path="src/repro/kernels/fixture.py",
        )
        assert "exactness-discipline" in codes(report)

    def test_kernel_ordering_comparisons_are_fine(self):
        report = run(
            """
            def accept(a, b, slack):
                return a < b + slack
            """,
            path="src/repro/kernels/fixture.py",
        )
        assert "exactness-discipline" not in codes(report)


# ---------------------------------------------------------------------------
# fraction-float-mixing
# ---------------------------------------------------------------------------


class TestFractionFloatMixing:
    def test_mixed_arithmetic_fires_everywhere(self):
        report = run(
            """
            from fractions import Fraction

            def bad():
                return Fraction(1, 3) + 0.5
            """,
            path="src/repro/obs/fixture.py",  # outside the exact scope
        )
        (finding,) = only(report, "fraction-float-mixing")
        assert finding.line == 5

    def test_mixed_comparison_fires(self):
        report = run(
            """
            from fractions import Fraction

            def bad(x):
                return Fraction(x) > 0.25
            """,
            path="src/repro/obs/fixture.py",
        )
        assert "fraction-float-mixing" in codes(report)

    def test_pure_fraction_arithmetic_is_clean(self):
        report = run(
            """
            from fractions import Fraction

            def good():
                return Fraction(1, 3) + Fraction(1, 2)
            """,
            path="src/repro/obs/fixture.py",
        )
        assert "fraction-float-mixing" not in codes(report)


# ---------------------------------------------------------------------------
# deadline-polling
# ---------------------------------------------------------------------------


class TestDeadlinePolling:
    def test_unpolled_while_loop_fires_at_the_loop(self):
        report = run(
            """
            def iterate(graph, deadline=None):
                deadline.check_now()
                done = False
                while not done:
                    done = graph.relax()
            """
        )
        (finding,) = only(report, "deadline-polling")
        assert finding.line == 5  # the while statement

    def test_polled_loop_is_clean(self):
        report = run(
            """
            def iterate(graph, deadline=None):
                done = False
                while not done:
                    deadline.check()
                    done = graph.relax()
            """
        )
        assert "deadline-polling" not in codes(report)

    def test_forwarding_to_callee_is_clean(self):
        report = run(
            """
            def iterate(sccs, deadline=None):
                out = []
                for scc in sccs:
                    out.append(solve(scc, deadline))
                return out
            """
        )
        assert "deadline-polling" not in codes(report)

    def test_alias_via_sub_is_tracked(self):
        report = run(
            """
            def iterate(graph, deadline=None):
                d = deadline.sub(1)
                while graph.busy():
                    d.check_now()
            """
        )
        assert "deadline-polling" not in codes(report)

    def test_never_consulted_fires_at_the_def(self):
        report = run(
            """
            def iterate(graph, deadline=None):
                return graph.solve()
            """
        )
        (finding,) = only(report, "deadline-polling")
        assert finding.line == 2
        assert "never consults" in finding.message

    def test_validation_only_loop_is_exempt(self):
        report = run(
            """
            def iterate(graph, deadline=None):
                for edge in graph.edges:
                    if edge.transit < 0:
                        raise ValueError(f"bad transit on {edge.name}")
                while graph.busy():
                    deadline.check()
            """
        )
        assert "deadline-polling" not in codes(report)

    def test_fraction_annotated_deadline_is_exempt(self):
        report = run(
            """
            def run_until(self, deadline: Fraction):
                while self.now < deadline:
                    self.step()
            """,
            path="src/repro/sdf/simulation.py",
        )
        assert "deadline-polling" not in codes(report)

    def test_storing_on_self_hands_off_the_obligation(self):
        report = run(
            """
            class Engine:
                def __init__(self, deadline=None):
                    self.deadline = deadline or default_deadline()
            """
        )
        assert "deadline-polling" not in codes(report)

    def test_cold_module_is_out_of_scope(self):
        report = run(
            """
            def iterate(graph, deadline=None):
                while graph.busy():
                    graph.relax()
            """,
            path="src/repro/obs/fixture.py",
        )
        assert "deadline-polling" not in codes(report)


# ---------------------------------------------------------------------------
# provenance-hygiene
# ---------------------------------------------------------------------------


class TestProvenanceHygiene:
    def test_unrecorded_builder_fires_at_the_def(self):
        report = run(
            """
            def reduce_graph(graph):
                result = SDFGraph(graph.name + "-reduced")
                for actor in graph.actors:
                    result.add_actor(actor.name, actor.time)
                return result
            """,
            path="src/repro/core/fixture.py",
        )
        (finding,) = only(report, "provenance-hygiene")
        assert finding.line == 2
        assert "record_step" in finding.message

    def test_recording_builder_is_clean(self):
        report = run(
            """
            def reduce_graph(graph):
                result = SDFGraph(graph.name + "-reduced")
                record_step("reduce", before=graph, after=result)
                return result
            """,
            path="src/repro/core/fixture.py",
        )
        assert "provenance-hygiene" not in codes(report)

    def test_recording_via_helper_closure_is_clean(self):
        report = run(
            """
            def reduce_graph(graph):
                result = SDFGraph(graph.name + "-reduced")
                _note(graph, result)
                return result

            def _note(before, after):
                record_step("reduce", before=before, after=after)
            """,
            path="src/repro/core/fixture.py",
        )
        assert "provenance-hygiene" not in codes(report)

    def test_private_and_non_building_functions_are_exempt(self):
        report = run(
            """
            def _helper(graph):
                result = SDFGraph("x")
                result.add_actor("a", 1)
                return result

            def describe(graph):
                return graph.name
            """,
            path="src/repro/core/fixture.py",
        )
        assert "provenance-hygiene" not in codes(report)

    def test_dropped_span_fires(self):
        report = run(
            """
            def traced():
                span("convert")
                do_work()
            """,
            path="src/repro/obs/fixture.py",
        )
        (finding,) = only(report, "provenance-hygiene")
        assert finding.line == 3

    def test_manual_enter_fires(self):
        report = run(
            """
            def traced():
                s = recording().__enter__()
                return s
            """,
            path="src/repro/obs/fixture.py",
        )
        assert "provenance-hygiene" in codes(report)

    def test_with_span_is_clean(self):
        report = run(
            """
            def traced():
                with span("convert"):
                    do_work()
            """,
            path="src/repro/obs/fixture.py",
        )
        assert "provenance-hygiene" not in codes(report)


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------

LOCKED_CLASS = """
import threading

class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0

    def record(self):
        with self._lock:
            self._hits += 1

    def {reader}
"""


class TestLockDiscipline:
    def test_unlocked_read_fires(self):
        report = run(
            LOCKED_CLASS.format(reader="hits(self):\n        return self._hits"),
            path="src/repro/analysis/fixture.py",
        )
        (finding,) = only(report, "lock-discipline")
        assert "_hits" in finding.message
        assert finding.actors == ("Cache.hits",)

    def test_unlocked_write_fires(self):
        report = run(
            LOCKED_CLASS.format(
                reader="reset(self):\n        self._hits = 0"
            ),
            path="src/repro/analysis/fixture.py",
        )
        (finding,) = only(report, "lock-discipline")
        assert "written" in finding.message

    def test_locked_read_is_clean(self):
        report = run(
            LOCKED_CLASS.format(
                reader="hits(self):\n        with self._lock:\n"
                       "            return self._hits"
            ),
            path="src/repro/analysis/fixture.py",
        )
        assert "lock-discipline" not in codes(report)

    def test_init_and_repr_are_exempt(self):
        report = run(
            LOCKED_CLASS.format(
                reader="__repr__(self):\n        return str(self._hits)"
            ),
            path="src/repro/analysis/fixture.py",
        )
        assert "lock-discipline" not in codes(report)

    def test_nested_lock_attribute_counts_as_a_lock(self):
        report = run(
            """
            class Child:
                def inc(self):
                    with self._registry._lock:
                        self._series = {}

                def read(self):
                    with self._registry._lock:
                        return self._series
            """,
            path="src/repro/obs/fixture.py",
        )
        assert "lock-discipline" not in codes(report)


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_wall_clock_fires(self):
        report = run(
            """
            import time

            def stamp():
                return time.time()
            """,
            path="src/repro/analysis/fixture.py",
        )
        (finding,) = only(report, "determinism")
        assert finding.line == 5
        assert finding.severity == "error"

    def test_global_rng_fires(self):
        report = run(
            """
            import random

            def jitter():
                return random.random()
            """,
            path="src/repro/analysis/fixture.py",
        )
        assert "determinism" in codes(report)

    def test_monotonic_clock_is_fine(self):
        report = run(
            """
            import time

            def elapsed(start):
                return time.monotonic() - start
            """,
            path="src/repro/analysis/fixture.py",
        )
        assert "determinism" not in codes(report)

    def test_obs_modules_are_out_of_scope(self):
        report = run(
            """
            import time

            def stamp():
                return time.time()
            """,
            path="src/repro/obs/fixture.py",
        )
        assert "determinism" not in codes(report)


# ---------------------------------------------------------------------------
# hygiene
# ---------------------------------------------------------------------------


class TestBroadExcept:
    def test_except_exception_fires(self):
        report = run(
            """
            def guarded():
                try:
                    work()
                except Exception:
                    pass
            """,
            path="src/repro/obs/fixture.py",
        )
        (finding,) = only(report, "broad-except")
        assert finding.line == 5

    def test_bare_except_fires(self):
        report = run(
            """
            def guarded():
                try:
                    work()
                except:
                    pass
            """,
            path="src/repro/obs/fixture.py",
        )
        assert "broad-except" in codes(report)

    def test_tuple_hiding_exception_fires(self):
        report = run(
            """
            def guarded():
                try:
                    work()
                except (ValueError, Exception):
                    pass
            """,
            path="src/repro/obs/fixture.py",
        )
        assert "broad-except" in codes(report)

    def test_narrow_except_is_clean(self):
        report = run(
            """
            def guarded():
                try:
                    work()
                except ValueError:
                    pass
            """,
            path="src/repro/obs/fixture.py",
        )
        assert "broad-except" not in codes(report)


class TestMutableDefault:
    def test_list_default_fires(self):
        report = run(
            """
            def collect(into=[]):
                return into
            """,
            path="src/repro/obs/fixture.py",
        )
        (finding,) = only(report, "mutable-default")
        assert finding.severity == "error"

    def test_constructor_and_kwonly_defaults_fire(self):
        report = run(
            """
            def collect(*, into=dict()):
                return into
            """,
            path="src/repro/obs/fixture.py",
        )
        assert "mutable-default" in codes(report)

    def test_none_default_is_clean(self):
        report = run(
            """
            def collect(into=None):
                return into or []
            """,
            path="src/repro/obs/fixture.py",
        )
        assert "mutable-default" not in codes(report)


# ---------------------------------------------------------------------------
# config interplay
# ---------------------------------------------------------------------------


# ---------------------------------------------------------------------------
# durability-discipline
# ---------------------------------------------------------------------------


class TestDurabilityDiscipline:
    DURABLE = "src/repro/analysis/store.py"

    def test_direct_final_path_write_fires(self):
        report = run(
            """
            def publish(path, data):
                with open(path, "wb") as handle:
                    handle.write(data)
            """,
            path=self.DURABLE,
        )
        (finding,) = only(report, "durability-discipline")
        assert "final path directly" in finding.message
        assert finding.severity == "error"

    def test_write_text_fires(self):
        report = run(
            """
            def publish(path, data):
                path.write_text(data)
            """,
            path=self.DURABLE,
        )
        (finding,) = only(report, "durability-discipline")
        assert "truncates its target in place" in finding.message

    def test_append_without_fsync_fires(self):
        report = run(
            """
            def log(path, line):
                with open(path, "a") as handle:
                    handle.write(line)
            """,
            path=self.DURABLE,
        )
        (finding,) = only(report, "durability-discipline")
        assert "not durable" in finding.message

    def test_append_with_fsync_is_clean(self):
        report = run(
            """
            import os

            def log(path, line):
                with open(path, "a") as handle:
                    handle.write(line)
                    handle.flush()
                    os.fsync(handle.fileno())
            """,
            path=self.DURABLE,
        )
        assert "durability-discipline" not in codes(report)

    def test_blessed_publish_protocol_is_clean(self):
        report = run(
            """
            import os

            def publish(tmp_path, final, data):
                with open(tmp_path, "wb") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_path, final)
            """,
            path=self.DURABLE,
        )
        assert "durability-discipline" not in codes(report)

    def test_temp_write_without_replace_fires(self):
        report = run(
            """
            import os

            def publish(tmp_path, data):
                with open(tmp_path, "wb") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
            """,
            path=self.DURABLE,
        )
        (finding,) = only(report, "durability-discipline")
        assert "os.replace" in finding.message

    def test_temp_write_without_fsync_fires(self):
        report = run(
            """
            import os

            def publish(tmp_path, final, data):
                with open(tmp_path, "wb") as handle:
                    handle.write(data)
                os.replace(tmp_path, final)
            """,
            path=self.DURABLE,
        )
        (finding,) = only(report, "durability-discipline")
        assert "os.fsync" in finding.message

    def test_reads_are_exempt(self):
        report = run(
            """
            def load(path):
                with open(path) as handle:
                    return handle.read()
            """,
            path=self.DURABLE,
        )
        assert "durability-discipline" not in codes(report)

    def test_outside_durable_modules_is_exempt(self):
        report = run(
            """
            def publish(path, data):
                path.write_text(data)
            """,
            path="src/repro/obs/fixture.py",
        )
        assert "durability-discipline" not in codes(report)

    def test_dogfood_real_persistence_layer(self):
        # The rule must hold on the very modules it was written for.
        from pathlib import Path

        for module in ("store.py", "journal.py"):
            source = Path("src/repro/analysis", module).read_text()
            report = lint_source(source,
                                 path=f"src/repro/analysis/{module}")
            assert "durability-discipline" not in codes(report), module


class TestScopeOptions:
    def test_scopes_are_configurable(self):
        config = LintConfig.build(options={"exact_modules": ["obs/"]})
        report = run(
            """
            def mean(value):
                return float(value)
            """,
            path="src/repro/obs/fixture.py",
            config=config,
        )
        assert "exactness-discipline" in codes(report)

    def test_severity_override(self):
        config = LintConfig.build(severity={"broad-except": "error"})
        report = run(
            """
            try:
                work()
            except Exception:
                pass
            """,
            path="src/repro/obs/fixture.py",
            config=config,
        )
        (finding,) = report.by_code("broad-except")
        assert finding.severity == "error"
        assert not report.ok


# ---------------------------------------------------------------------------
# schema-validator-sync
# ---------------------------------------------------------------------------


class TestSchemaValidatorSync:
    OBS = "src/repro/obs/fixture.py"

    def test_unvalidatable_schema_fires(self):
        report = run(
            """
            MY_SCHEMA = "repro-nonexistent-v1"
            """,
            path=self.OBS,
        )
        (finding,) = only(report, "schema-validator-sync")
        assert "repro-nonexistent-v1" in finding.message
        assert finding.severity == "error"

    def test_literal_repeated_in_check_py_passes(self):
        # check.py repeats this tag as its own "kept in sync" constant.
        report = run(
            """
            TRACE_SUMMARY_SCHEMA = "repro-trace-summary-v1"
            """,
            path=self.OBS,
        )
        assert "schema-validator-sync" not in codes(report)

    def test_constant_imported_by_name_passes(self):
        # check.py imports `SCHEMA` from repro.obs.metrics by name.
        report = run(
            """
            SCHEMA = "repro-fresh-tag-v9"
            """,
            path=self.OBS,
        )
        assert "schema-validator-sync" not in codes(report)

    def test_non_schema_constants_ignored(self):
        report = run(
            """
            BANNER = "repro-unknown-v1"
            OTHER_SCHEMA = "not a schema tag"
            """,
            path=self.OBS,
        )
        assert "schema-validator-sync" not in codes(report)

    def test_outside_obs_is_exempt(self):
        report = run(
            """
            MY_SCHEMA = "repro-nonexistent-v1"
            """,
            path="src/repro/mcm/fixture.py",
        )
        assert "schema-validator-sync" not in codes(report)

    def test_check_py_itself_is_exempt(self):
        report = run(
            """
            GHOST_SCHEMA = "repro-ghost-v1"
            """,
            path="src/repro/obs/check.py",
        )
        assert "schema-validator-sync" not in codes(report)
