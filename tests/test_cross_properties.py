"""Cross-cutting properties over hypothesis-generated graphs.

These quantify the library's central invariants over the whole space of
consistent live graphs rather than hand-picked examples:

* the three throughput back-ends agree;
* the compact conversion preserves the cycle time and respects the
  Section-6 size bounds;
* serialisation round-trips preserve analysis results;
* unfolding composes (`unfold(g, a·b)` has the cycle time of
  `unfold(unfold(g, a), b)`);
* pruning never changes the cycle time;
* latency agrees with the recurrence's first iteration.
"""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from strategies import live_hsdf_graphs, live_sdf_graphs
from repro.analysis.latency import latency
from repro.analysis.throughput import throughput
from repro.analysis.transient import transient_analysis
from repro.core.hsdf_conversion import convert_to_hsdf
from repro.core.pruning import prune_redundant_edges
from repro.core.unfolding import unfold
from repro.errors import ConvergenceError
from repro.sdf.io import from_json, to_json
from repro.sdf.schedule import is_live

relaxed = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestThroughputAgreement:
    @given(g=live_sdf_graphs())
    @relaxed
    def test_symbolic_equals_hsdf(self, g):
        assert (
            throughput(g, method="symbolic").cycle_time
            == throughput(g, method="hsdf").cycle_time
        )

    @given(g=live_hsdf_graphs(max_actors=5, max_extra=4))
    @relaxed
    def test_simulation_agrees_when_periodic(self, g):
        symbolic = throughput(g, method="symbolic")
        if symbolic.unbounded:
            return  # zero-time cycles: the simulator rejects these
        try:
            simulated = throughput(g, method="simulation")
        except ConvergenceError:
            return  # not strongly connected: tokens build up
        assert simulated.cycle_time == symbolic.cycle_time


class TestConversionProperties:
    @given(g=live_sdf_graphs())
    @relaxed
    def test_compact_conversion_equivalent_and_bounded(self, g):
        conv = convert_to_hsdf(g)
        assert conv.within_paper_bounds()
        assert is_live(conv.graph)
        assert (
            throughput(conv.graph, method="hsdf").cycle_time
            == throughput(g, method="symbolic").cycle_time
        )

    @given(g=live_sdf_graphs(max_actors=4))
    @relaxed
    def test_conversion_idempotent_on_cycle_time(self, g):
        # Converting the conversion preserves the cycle time again.
        once = convert_to_hsdf(g)
        twice = convert_to_hsdf(once.graph)
        assert (
            throughput(twice.graph, method="hsdf").cycle_time
            == throughput(g).cycle_time
        )


class TestSerialisation:
    @given(g=live_sdf_graphs())
    @relaxed
    def test_json_round_trip_preserves_analysis(self, g):
        clone = from_json(to_json(g))
        assert clone.structurally_equal(g)
        assert throughput(clone).cycle_time == throughput(g).cycle_time


class TestUnfoldingComposition:
    @given(
        g=live_hsdf_graphs(max_actors=4, max_extra=2),
        a=st.integers(min_value=1, max_value=3),
        b=st.integers(min_value=1, max_value=3),
    )
    @relaxed
    def test_unfold_composes_on_cycle_time(self, g, a, b):
        direct = throughput(unfold(g, a * b), method="hsdf").cycle_time
        nested = throughput(unfold(unfold(g, a), b), method="hsdf").cycle_time
        assert direct == nested
        base = throughput(g, method="hsdf").cycle_time
        if base is not None:
            assert direct == a * b * base

    @given(g=live_hsdf_graphs(max_actors=4, max_extra=3), n=st.integers(min_value=1, max_value=4))
    @relaxed
    def test_unfold_preserves_total_tokens(self, g, n):
        assert unfold(g, n).total_tokens() == g.total_tokens()


class TestPruning:
    @given(g=live_hsdf_graphs(max_actors=5, max_extra=6))
    @relaxed
    def test_pruning_preserves_cycle_time(self, g):
        assert (
            throughput(prune_redundant_edges(g), method="hsdf").cycle_time
            == throughput(g, method="hsdf").cycle_time
        )


class TestLatencyRecurrence:
    @given(g=live_sdf_graphs(max_actors=4, max_extra=2))
    @relaxed
    def test_makespan_vs_recurrence_first_iteration(self, g):
        result = throughput(g)
        if result.unbounded:
            return
        lat = latency(g)
        analysis = transient_analysis(g, horizon=4)
        # Token availability after one iteration = recurrence state 1;
        # its max equals the latency module's token times.
        assert analysis.completion(1) == max(lat.token_times)
