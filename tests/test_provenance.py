"""The analysis flight recorder: certificates that re-verify.

The acceptance property of the provenance layer: for every graph
analysed *exactly*, :func:`repro.obs.provenance.verify_witness`
re-derives the reported cycle mean from the witness arcs on the graph
that was analysed — in O(|cycle|), independent of the solver that found
the cycle, and stable under arbitrary reduction pipelines applied
before the analysis.  Conservative-tier outcomes must carry a record
naming the degradation reason and the tiers that were skipped.
"""

from __future__ import annotations

import json
from dataclasses import replace
from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from strategies import consistent_connected_sdf_graphs

from repro.analysis.cache import AnalysisCache
from repro.analysis.resilience import AnalysisPolicy
from repro.analysis.throughput import throughput
from repro.core.pruning import prune_redundant_edges
from repro.errors import ConvergenceError
from repro.graphs import TABLE1_CASES, modem, mp3_playback
from repro.obs.check import validate_provenance
from repro.obs.provenance import (
    CycleWitness,
    ProvenanceRecord,
    WitnessArc,
    WitnessError,
    current_recorder,
    record_step,
    recording,
    verify_witness,
)
from repro.sdf.repetition import repetition_vector
from repro.sdf.transform import traditional_hsdf

#: Registry graphs small enough for the O(sum(q)) back-ends in a test.
SMALL_EXPANSION = 700

quick = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _verified(graph, result):
    """The acceptance check for one exact analysis."""
    record = result.provenance
    assert record is not None and record.status == "exact"
    validate_provenance(record.as_dict())
    assert record.witness is not None, record.witness_unavailable
    assert verify_witness(graph, record) == result.cycle_time
    return record


# ----------------------------------------------------------------------
# the acceptance property on the registry
# ----------------------------------------------------------------------

class TestRegistryWitnesses:
    @pytest.mark.parametrize("case", TABLE1_CASES, ids=lambda c: c.name)
    def test_symbolic_token_witness(self, case):
        graph = case.build()
        record = _verified(graph, throughput(graph, method="symbolic"))
        assert record.algorithm == "karp"
        assert record.witness.space == "token"
        # Algorithm 1 ran: the record shows the symbolic conversion.
        assert "symbolic-conversion" in [s.kind for s in record.steps]

    @pytest.mark.parametrize("case", TABLE1_CASES, ids=lambda c: c.name)
    def test_hsdf_actor_witness(self, case):
        graph = case.build()
        if sum(repetition_vector(graph).values()) > SMALL_EXPANSION:
            pytest.skip("HSDF expansion too large for a unit test")
        record = _verified(graph, throughput(graph, method="hsdf"))
        assert record.algorithm == "howard"
        assert record.witness.space == "actor"

    @pytest.mark.parametrize("case", TABLE1_CASES, ids=lambda c: c.name)
    def test_simulation_backpointer_witness(self, case):
        graph = case.build()
        if sum(repetition_vector(graph).values()) > SMALL_EXPANSION:
            pytest.skip("simulation too large for a unit test")
        try:
            result = throughput(graph, method="simulation")
        except ConvergenceError as error:
            pytest.skip(f"simulation cannot analyse this graph: {error}")
        record = _verified(graph, result)
        assert record.witness.space == "actor"
        assert record.witness.source == "simulation-backpointers"


# ----------------------------------------------------------------------
# ... and under random reduction pipelines (hypothesis)
# ----------------------------------------------------------------------

class TestWitnessProperty:
    @given(g=consistent_connected_sdf_graphs(max_actors=4, max_repetition=3,
                                             min_time=1, max_extra_tokens=2),
           data=st.data())
    @quick
    def test_reverifies_after_random_reduction_pipeline(self, g, data):
        """Reduce the graph by a drawn pipeline, analyse with a drawn
        back-end: the witness still re-derives the cycle time on the
        graph that was analysed."""
        pipeline = data.draw(st.lists(
            st.sampled_from(["prune", "expand"]), max_size=3))
        for step in pipeline:
            g = prune_redundant_edges(g) if step == "prune" else traditional_hsdf(g)
        method = data.draw(st.sampled_from(["symbolic", "hsdf", "simulation"]))
        result = throughput(g, method=method)
        record = result.provenance
        validate_provenance(record.as_dict())
        if record.witness is None:
            # Never silent: a missing witness must name its reason
            # (only the simulation extractor may decline).
            assert method == "simulation" and record.witness_unavailable
            return
        assert verify_witness(g, record) == result.cycle_time


# ----------------------------------------------------------------------
# the flight recorder itself
# ----------------------------------------------------------------------

class TestFlightRecorder:
    def test_disabled_recording_is_a_no_op(self):
        assert current_recorder() is None
        record_step("noop")  # must not raise with no recorder open

    def test_steps_carry_fingerprints_and_sizes(self):
        graph = modem()
        with recording() as recorder:
            pruned = prune_redundant_edges(graph)
        (step,) = recorder.steps
        assert step.kind == "pruning"
        assert step.before_fingerprint == graph.fingerprint()
        assert step.after_fingerprint == pruned.fingerprint()
        assert step.before_size["edges"] - step.after_size["edges"] == \
            step.detail["removed_edges"]

    def test_nested_recorders_both_see_steps(self):
        graph = modem()
        with recording() as outer:
            with recording() as inner:
                prune_redundant_edges(graph)
            prune_redundant_edges(graph)
        assert len(inner.steps) == 1
        assert len(outer.steps) == 2
        assert current_recorder() is None


# ----------------------------------------------------------------------
# serialisation round trip
# ----------------------------------------------------------------------

class TestRoundTrip:
    def test_record_survives_json(self):
        graph = modem()
        result = throughput(graph)
        record = result.provenance
        data = json.loads(json.dumps(record.as_dict()))
        validate_provenance(data)
        back = ProvenanceRecord.from_dict(data)
        assert back == record
        # The dict form verifies directly too (service-boundary shape).
        assert verify_witness(graph, data) == result.cycle_time

    def test_from_dict_rejects_wrong_schema(self):
        data = throughput(modem()).provenance.as_dict()
        data["schema"] = "repro-provenance-v0"
        with pytest.raises(WitnessError, match="repro-provenance-v1"):
            ProvenanceRecord.from_dict(data)

    def test_cached_result_carries_the_same_certificate(self):
        cache = AnalysisCache(maxsize=8)
        graph = modem()
        warm = cache.throughput(graph)
        again = cache.throughput(graph)
        assert again.provenance is warm.provenance
        assert verify_witness(graph, again.provenance) == warm.cycle_time


# ----------------------------------------------------------------------
# tamper detection
# ----------------------------------------------------------------------

class TestTamperDetection:
    def test_unchained_arcs_rejected(self):
        witness = CycleWitness(space="actor", arcs=[
            WitnessArc("a", "b", Fraction(1), 1),
            WitnessArc("b", "c", Fraction(1), 1),  # c never closes on a
        ])
        with pytest.raises(WitnessError, match="do not chain"):
            verify_witness(None, witness)

    def test_zero_transit_rejected(self):
        witness = CycleWitness(space="actor", arcs=[
            WitnessArc("a", "a", Fraction(1), 0),
        ])
        with pytest.raises(WitnessError, match="transit sum must be positive"):
            verify_witness(None, witness)

    def test_negative_transit_rejected(self):
        witness = CycleWitness(space="actor", arcs=[
            WitnessArc("a", "a", Fraction(1), -1),
        ])
        with pytest.raises(WitnessError, match="negative transit"):
            verify_witness(None, witness)

    def test_inflated_weight_changes_the_mean(self):
        graph = modem()
        record = throughput(graph).provenance
        arcs = list(record.witness.arcs)
        arcs[0] = replace(arcs[0], weight=arcs[0].weight + 1)
        tampered = CycleWitness(space=record.witness.space, arcs=arcs,
                                source=record.witness.source)
        with pytest.raises(WitnessError, match="result claims"):
            verify_witness(graph, tampered, cycle_time=record.cycle_time)

    def test_token_label_must_name_a_channel(self):
        graph = modem()
        witness = CycleWitness(space="token", arcs=[
            WitnessArc("ghost[0]", "ghost[0]", Fraction(1), 1),
        ])
        with pytest.raises(WitnessError, match="no channel 'ghost'"):
            verify_witness(graph, witness)

    def test_token_position_must_exist(self):
        graph = modem()
        record = throughput(graph).provenance
        edge_name, _ = record.witness.arcs[0].source[:-1].rsplit("[", 1)
        beyond = f"{edge_name}[{graph.edge(edge_name).tokens}]"
        witness = CycleWitness(space="token", arcs=[
            WitnessArc(beyond, beyond, Fraction(1), 1),
        ])
        with pytest.raises(WitnessError, match="holds only"):
            verify_witness(graph, witness)

    def test_actor_weight_must_match_execution_time(self):
        graph = modem()
        record = throughput(graph, method="hsdf").provenance
        arc = record.witness.arcs[0]
        wrong = Fraction(graph.execution_time(arc.source)) + 1
        witness = CycleWitness(space="actor", arcs=[
            replace(arc, weight=wrong, target=arc.source, key=None),
        ])
        with pytest.raises(WitnessError, match="execution time"):
            verify_witness(graph, witness)

    def test_record_without_witness_refuses_to_verify(self):
        record = throughput(modem()).provenance
        stripped = replace(record, witness=None,
                           witness_unavailable="stripped for the test")
        with pytest.raises(WitnessError, match="stripped for the test"):
            verify_witness(modem(), stripped)


# ----------------------------------------------------------------------
# fallback tiers
# ----------------------------------------------------------------------

#: Starves the exact tiers so Theorem 1 answers (deterministic in CI).
FORCE_FALLBACK = {"simulation": 0.001, "symbolic": 0.001}


class TestTierProvenance:
    def test_conservative_outcome_names_degradation_and_witness(self):
        graph = mp3_playback()
        outcome = AnalysisPolicy(
            timeout=30.0, stage_timeouts=FORCE_FALLBACK).run(graph)
        assert outcome.status == "conservative-bound"
        record = outcome.record
        assert record is not None and record.status == "conservative-bound"
        validate_provenance(record.as_dict())
        # The degradation is accounted for, tier by tier.
        assert record.degradation_reason
        by_tier = {t.tier: t for t in record.tiers}
        assert by_tier["simulation"].status == "timeout"
        assert by_tier["symbolic"].status == "timeout"
        assert by_tier["abstraction"].status == "ok"
        # The abstract witness certifies λ′ of bound = N · λ′.
        assert record.bound_phase_count == outcome.bound_phase_count
        assert record.witness is not None
        assert record.witness.space == "abstract"
        assert verify_witness(graph, record) == record.bound_abstract_cycle_time

    def test_exact_outcome_marks_unreached_tiers_skipped(self):
        graph = modem()
        outcome = AnalysisPolicy(timeout=30.0).run(graph)
        assert outcome.status == "exact"
        record = outcome.record
        assert record.status == "exact"
        assert record.degradation_reason is None
        assert record.skipped_tiers() == ["symbolic", "abstraction"]
        for tier in record.tiers:
            if tier.status == "skipped":
                assert tier.reason == "earlier tier answered"
        assert verify_witness(graph, record) == outcome.cycle_time_bound

    @given(g=consistent_connected_sdf_graphs(max_actors=4, max_repetition=3,
                                             min_time=1))
    @quick
    def test_every_policy_run_is_accounted_for(self, g):
        """Whatever tier answers, the record covers all stages and any
        witness it carries verifies on the original graph."""
        outcome = AnalysisPolicy(timeout=30.0).run(g)
        record = outcome.record
        assert record is not None
        validate_provenance(record.as_dict())
        assert [t.tier for t in record.tiers] == list(AnalysisPolicy().stages)
        if record.witness is not None:
            expected = (record.bound_abstract_cycle_time
                        if record.status == "conservative-bound"
                        else outcome.cycle_time_bound)
            assert verify_witness(g, record) == expected
