"""Symbolic max-plus execution (the engine of Algorithm 1).

The Figure 3 walkthrough of the paper is reproduced stamp by stamp.
"""

import random

import pytest

from repro.errors import DeadlockError, UnboundedThroughputError, ValidationError
from repro.graphs.examples import figure3_graph
from repro.graphs.random_sdf import random_consistent_sdf
from repro.maxplus.algebra import EPSILON
from repro.maxplus.matrix import MaxPlusVector
from repro.core.symbolic import TokenId, initial_token_ids, symbolic_iteration
from repro.sdf.graph import SDFGraph
from repro.sdf.schedule import sequential_schedule


@pytest.fixture
def fig3():
    return figure3_graph()


@pytest.fixture
def fig3_iteration(fig3):
    # Fix the schedule to the paper's narration: L, L, R.
    return symbolic_iteration(fig3, schedule=["L", "L", "R"])


class TestTokenEnumeration:
    def test_canonical_order(self, fig3):
        ids = initial_token_ids(fig3)
        assert [str(t) for t in ids] == [
            "t1_t3[0]",
            "t1_t3[1]",
            "t2[0]",
            "t4[0]",
        ]

    def test_count_matches_total_tokens(self, fig3):
        assert len(initial_token_ids(fig3)) == fig3.total_tokens()


class TestFigure3Stamps:
    """Paper, Section 6: 't1, t2, t3, t4' with our canonical order
    (t1, t3, t2, t4) — index 0 = t1, 1 = t3, 2 = t2, 3 = t4."""

    def test_first_left_firing(self, fig3_iteration):
        # "the firing ... ends at max(t1+3, t2+3)"
        stamp = fig3_iteration.firing_completions[("L", 0)]
        assert stamp == MaxPlusVector([3, EPSILON, 3, EPSILON])

    def test_second_left_firing(self, fig3_iteration):
        # "starts at max(t1+3, t2+3, t3) and ends at max(t1+6, t2+6, t3+3)"
        start = fig3_iteration.firing_starts[("L", 1)]
        end = fig3_iteration.firing_completions[("L", 1)]
        assert start == MaxPlusVector([3, 0, 3, EPSILON])
        assert end == MaxPlusVector([6, 3, 6, EPSILON])

    def test_right_firing_closes_iteration(self, fig3_iteration):
        # R starts at max of both L outputs and t4, ends +1.
        end = fig3_iteration.firing_completions[("R", 0)]
        assert end == MaxPlusVector([7, 4, 7, 1])

    def test_iteration_matrix_rows(self, fig3_iteration):
        m = fig3_iteration.matrix
        # Slots t1 and t3 (rows 0, 1) and t4 (row 3) are produced by R.
        assert m.row(0) == MaxPlusVector([7, 4, 7, 1])
        assert m.row(1) == MaxPlusVector([7, 4, 7, 1])
        assert m.row(3) == MaxPlusVector([7, 4, 7, 1])
        # Slot t2 (row 2) is L's second self-loop token.
        assert m.row(2) == MaxPlusVector([6, 3, 6, EPSILON])


class TestScheduleIndependence:
    @pytest.mark.parametrize("seed", range(6))
    def test_any_admissible_schedule_same_matrix(self, seed):
        rng = random.Random(seed)
        g = random_consistent_sdf(rng, n_actors=4, extra_edges=2, max_repetition=3)
        reference = symbolic_iteration(g).matrix
        # Build a different admissible schedule by shuffling actor
        # priorities: greedily fire a random enabled actor.
        from repro.sdf.repetition import repetition_vector

        remaining = dict(repetition_vector(g))
        tokens = {e.name: e.tokens for e in g.edges}
        schedule = []
        while any(remaining.values()):
            candidates = [
                a
                for a in g.actor_names
                if remaining[a] > 0
                and all(tokens[e.name] >= e.consumption for e in g.in_edges(a))
            ]
            actor = rng.choice(candidates)
            for e in g.in_edges(actor):
                tokens[e.name] -= e.consumption
            for e in g.out_edges(actor):
                tokens[e.name] += e.production
            remaining[actor] -= 1
            schedule.append(actor)
        assert symbolic_iteration(g, schedule=schedule).matrix == reference


class TestErrors:
    def test_source_actor_rejected(self):
        g = SDFGraph()
        g.add_actors("src", "dst")
        g.add_edge("src", "dst")
        g.add_edge("dst", "dst", tokens=1)
        with pytest.raises(UnboundedThroughputError):
            symbolic_iteration(g)

    def test_deadlock_propagates(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        with pytest.raises(DeadlockError):
            symbolic_iteration(g)

    def test_inadmissible_schedule_rejected(self, fig3):
        with pytest.raises(ValidationError):
            symbolic_iteration(fig3, schedule=["R", "L", "L"])

    def test_partial_schedule_rejected(self, fig3):
        with pytest.raises(ValidationError):
            symbolic_iteration(fig3, schedule=["L", "L"])


class TestMatrixShape:
    def test_square_in_token_count(self, fig3_iteration):
        m = fig3_iteration.matrix
        assert m.nrows == m.ncols == 4

    def test_all_coefficients_nonnegative(self, fig3_iteration):
        for row in fig3_iteration.matrix.rows:
            for value in row:
                assert value == EPSILON or value >= 0

    def test_token_index_lookup(self, fig3_iteration):
        token = fig3_iteration.token_ids[2]
        assert fig3_iteration.token_index(token) == 2
        assert token == TokenId("t2", 0)
