"""N-fold unfolding (Definition 5) and Proposition 2."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.throughput import throughput
from repro.core.unfolding import phase_name, unfold
from repro.errors import ValidationError
from repro.graphs.examples import section41_abstraction, section41_example
from repro.core.abstraction import abstract_graph
from repro.sdf.graph import SDFGraph


def abstract_fig1():
    return abstract_graph(section41_example(), section41_abstraction())


class TestStructure:
    def test_actor_multiplication(self, simple_ring):
        u = unfold(simple_ring, 4)
        assert u.actor_count() == 12
        assert u.execution_time(phase_name("X", 3)) == 2

    def test_edge_multiplication(self, simple_ring):
        u = unfold(simple_ring, 4)
        assert u.edge_count() == simple_ring.edge_count() * 4

    def test_unfold_by_one_is_isomorphic(self, simple_ring):
        u = unfold(simple_ring, 1)
        assert u.actor_count() == simple_ring.actor_count()
        assert sorted(e.tokens for e in u.edges) == sorted(
            e.tokens for e in simple_ring.edges
        )

    def test_invalid_factor(self, simple_ring):
        with pytest.raises(ValidationError):
            unfold(simple_ring, 0)

    def test_delay_distribution_small(self):
        # Single self-loop with d = 1, unfolded 3-fold: a ring through the
        # phases with the token on the wrap edge.
        g = SDFGraph()
        g.add_actor("a", 1)
        g.add_edge("a", "a", tokens=1)
        u = unfold(g, 3)
        delays = {(e.source, e.target): e.tokens for e in u.edges}
        assert delays == {
            ("a@0", "a@1"): 0,
            ("a@1", "a@2"): 0,
            ("a@2", "a@0"): 1,
        }

    def test_delay_larger_than_factor(self):
        # d = 5, N = 3: every phase edge carries d div N = 1 token and the
        # wrapped ones carry one more.
        g = SDFGraph()
        g.add_actor("a", 1)
        g.add_edge("a", "a", tokens=5)
        u = unfold(g, 3)
        delays = sorted(e.tokens for e in u.edges)
        assert delays == [1, 2, 2]

    def test_delay_multiple_of_factor(self):
        g = SDFGraph()
        g.add_actor("a", 1)
        g.add_edge("a", "a", tokens=4)
        u = unfold(g, 2)
        # Phases map to themselves: two self-loops with 2 tokens each.
        delays = {(e.source, e.target): e.tokens for e in u.edges}
        assert delays == {("a@0", "a@0"): 2, ("a@1", "a@1"): 2}

    @given(d=st.integers(min_value=0, max_value=20), n=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60)
    def test_total_tokens_preserved(self, d, n):
        g = SDFGraph()
        g.add_actor("a", 1)
        g.add_edge("a", "a", tokens=d)
        assert unfold(g, n).total_tokens() == d


class TestProposition2:
    """The unfolding has the same throughput up to the factor N."""

    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_ring_cycle_time_scales(self, simple_ring, n):
        base = throughput(simple_ring, method="hsdf").cycle_time
        unfolded = throughput(unfold(simple_ring, n), method="hsdf").cycle_time
        # One unfolded iteration = N original iterations.
        assert unfolded == n * base

    @pytest.mark.parametrize("n", [2, 6])
    def test_abstract_fig1_scaling(self, n):
        g = abstract_fig1()
        base = throughput(g, method="hsdf").cycle_time
        unfolded = throughput(unfold(g, n), method="hsdf").cycle_time
        assert unfolded == n * base

    def test_per_actor_rate_divides_by_n(self, simple_ring):
        n = 3
        base = throughput(simple_ring, method="hsdf")
        unfolded = throughput(unfold(simple_ring, n), method="hsdf")
        for actor in simple_ring.actor_names:
            for phase in range(n):
                assert (
                    unfolded.per_actor[phase_name(actor, phase)]
                    == base.per_actor[actor] / n
                )

    def test_simulation_agrees_on_unfolding(self):
        g = abstract_fig1()
        u = unfold(g, 4)
        assert (
            throughput(u, method="simulation").cycle_time
            == throughput(u, method="hsdf").cycle_time
        )
