"""Buffer modelling, occupancy bounds and minimal sizing."""

from fractions import Fraction

import pytest

from repro.analysis.buffer import (
    buffer_aware_graph,
    buffer_aware_throughput,
    channel_occupancy_bounds,
    minimal_buffer_sizes,
)
from repro.analysis.throughput import throughput
from repro.errors import DeadlockError, ValidationError
from repro.graphs.examples import figure3_graph
from repro.sdf.graph import SDFGraph
from repro.sdf.schedule import is_live


def chain():
    g = SDFGraph("chain")
    g.add_actor("a", 2)
    g.add_actor("b", 3)
    g.add_edge("a", "a", tokens=1, name="self_a")
    g.add_edge("b", "b", tokens=1, name="self_b")
    g.add_edge("a", "b", name="ab")
    return g


class TestBufferModel:
    def test_reverse_edge_added(self):
        g = chain()
        buffered = buffer_aware_graph(g, {"ab": 3})
        back = buffered.edge("space_ab")
        assert (back.source, back.target) == ("b", "a")
        assert back.tokens == 3
        assert back.production == 1 and back.consumption == 1

    def test_reverse_edge_rates_swap(self):
        g = SDFGraph()
        g.add_actor("a", 1)
        g.add_actor("b", 1)
        g.add_edge("a", "a", tokens=1)
        g.add_edge("b", "b", tokens=1)
        g.add_edge("a", "b", production=3, consumption=2, tokens=1, name="ab")
        buffered = buffer_aware_graph(g, {"ab": 6})
        back = buffered.edge("space_ab")
        assert back.production == 2 and back.consumption == 3
        assert back.tokens == 5  # capacity − initial tokens

    def test_capacity_below_initial_tokens_rejected(self):
        g = SDFGraph()
        g.add_actor("a", 1)
        g.add_edge("a", "a", tokens=3, name="loop")
        with pytest.raises(ValidationError):
            buffer_aware_graph(g, {"loop": 2})

    def test_unlisted_channels_stay_unbounded(self):
        g = chain()
        buffered = buffer_aware_graph(g, {})
        assert buffered.edge_count() == g.edge_count()


class TestBufferThroughput:
    def test_tight_buffer_slows_chain(self):
        g = chain()
        generous = buffer_aware_throughput(g, {"ab": 10}).cycle_time
        tight = buffer_aware_throughput(g, {"ab": 1}).cycle_time
        assert generous <= tight
        # Capacity 1: a and b alternate through the full round trip.
        assert tight == 5

    def test_monotone_in_capacity(self):
        g = chain()
        times = [
            buffer_aware_throughput(g, {"ab": c}).cycle_time for c in (1, 2, 3, 4)
        ]
        assert times == sorted(times, reverse=True)

    def test_zero_capacity_deadlocks(self):
        g = chain()
        with pytest.raises(DeadlockError):
            buffer_aware_throughput(g, {"ab": 0})


class TestOccupancy:
    def test_buffered_chain_occupancy(self):
        # A finite buffer makes the chain strongly connected (periodic),
        # so exact occupancy bounds exist.
        g = buffer_aware_graph(chain(), {"ab": 3})
        bounds = channel_occupancy_bounds(g)
        assert bounds["self_a"] == 1
        assert 1 <= bounds["ab"] <= 3
        assert bounds["ab"] + bounds["space_ab"] >= 3

    def test_unbounded_build_up_reported(self):
        from repro.errors import ConvergenceError

        with pytest.raises(ConvergenceError):
            channel_occupancy_bounds(chain())

    def test_occupancy_at_least_initial_tokens(self):
        g = figure3_graph()
        bounds = channel_occupancy_bounds(g)
        for edge in g.edges:
            assert bounds[edge.name] >= edge.tokens


class TestMinimalSizes:
    def test_chain_minimal_size(self):
        sizes = minimal_buffer_sizes(chain())
        assert sizes == {"ab": 1}
        buffered = buffer_aware_graph(chain(), sizes)
        assert is_live(buffered)

    def test_multirate_minimal_size(self):
        g = SDFGraph()
        g.add_actor("a", 1)
        g.add_actor("b", 1)
        g.add_edge("a", "a", tokens=1)
        g.add_edge("b", "b", tokens=1)
        g.add_edge("a", "b", production=2, consumption=3, name="ab")
        sizes = minimal_buffer_sizes(g)
        # b needs 3 tokens; a produces 2 per firing: capacity 4 is the
        # smallest that ever exposes 3 tokens (2+2 with room for 4).
        assert sizes["ab"] == 4
        assert is_live(buffer_aware_graph(g, sizes))

    def test_self_loops_not_sized(self):
        sizes = minimal_buffer_sizes(chain())
        assert "self_a" not in sizes

    def test_budget_exhaustion_raises(self):
        g = SDFGraph()
        g.add_actor("a", 1)
        g.add_actor("b", 1)
        g.add_edge("a", "a", tokens=1)
        g.add_edge("b", "b", tokens=1)
        g.add_edge("a", "b", production=1, consumption=50, name="ab")
        with pytest.raises(DeadlockError):
            minimal_buffer_sizes(g, max_capacity=10)
