"""Unit tests for the cycle-ratio graph container."""

from fractions import Fraction

import pytest

from repro.mcm.graphlib import (
    CycleRatioResult,
    RatioGraph,
    ZeroTransitCycleError,
    cycle_ratio,
)


def ring(weights, transits):
    g = RatioGraph()
    n = len(weights)
    for i in range(n):
        g.add_edge(i, (i + 1) % n, weights[i], transits[i])
    return g


class TestConstruction:
    def test_counts(self):
        g = ring([1, 2, 3], [1, 0, 0])
        assert g.node_count() == 3
        assert g.edge_count() == 3

    def test_negative_transit_rejected(self):
        g = RatioGraph()
        with pytest.raises(ValueError):
            g.add_edge("a", "b", 1, -1)

    def test_multi_edges_allowed(self):
        g = RatioGraph()
        g.add_edge("a", "b", 1, 0)
        g.add_edge("a", "b", 2, 1)
        assert g.edge_count() == 2
        assert len(g.out_edges("a")) == 2

    def test_contains(self):
        g = ring([1], [1])
        assert 0 in g and 99 not in g


class TestStructure:
    def test_scc_of_ring_is_whole(self):
        g = ring([1, 1, 1, 1], [1, 0, 0, 0])
        sccs = g.strongly_connected_components()
        assert len(sccs) == 1 and len(sccs[0]) == 4

    def test_scc_of_dag(self):
        g = RatioGraph()
        g.add_edge("a", "b", 1, 0)
        g.add_edge("b", "c", 1, 0)
        assert len(g.strongly_connected_components()) == 3
        assert g.nontrivial_sccs() == []

    def test_self_loop_is_nontrivial_scc(self):
        g = RatioGraph()
        g.add_edge("a", "a", 1, 1)
        g.add_node("b")
        nontrivial = g.nontrivial_sccs()
        assert len(nontrivial) == 1
        assert nontrivial[0].nodes == ["a"]

    def test_two_separate_cycles(self):
        g = RatioGraph()
        g.add_edge("a", "b", 1, 1)
        g.add_edge("b", "a", 1, 0)
        g.add_edge("c", "d", 1, 1)
        g.add_edge("d", "c", 1, 0)
        g.add_edge("b", "c", 1, 0)  # bridge
        assert len(g.nontrivial_sccs()) == 2

    def test_subgraph_keeps_internal_edges_only(self):
        g = RatioGraph()
        g.add_edge("a", "b", 1, 0)
        g.add_edge("b", "c", 2, 0)
        sub = g.subgraph(["a", "b"])
        assert sub.node_count() == 2
        assert sub.edge_count() == 1


class TestCycles:
    def test_find_any_cycle_on_acyclic(self):
        g = RatioGraph()
        g.add_edge("a", "b", 1, 0)
        assert g.find_any_cycle() is None
        assert not g.has_cycle()

    def test_find_any_cycle_returns_closed_walk(self):
        g = ring([1, 2, 3], [1, 0, 0])
        cycle = g.find_any_cycle()
        assert cycle is not None
        for e, nxt in zip(cycle, cycle[1:] + cycle[:1]):
            assert e.target == nxt.source

    def test_zero_transit_cycle_detected(self):
        g = ring([1, 1, 1], [0, 0, 0])
        cycle = g.find_zero_transit_cycle()
        assert cycle is not None
        assert sum(e.transit for e in cycle) == 0

    def test_zero_transit_cycle_absent_when_tokens_on_every_cycle(self):
        g = ring([1, 1, 1], [1, 0, 0])
        assert g.find_zero_transit_cycle() is None

    def test_zero_transit_ignores_tokened_edges(self):
        # A cycle exists but always crosses a transit-1 edge.
        g = RatioGraph()
        g.add_edge("a", "b", 1, 0)
        g.add_edge("b", "c", 1, 0)
        g.add_edge("c", "a", 1, 1)
        g.add_edge("b", "d", 1, 0)
        assert g.find_zero_transit_cycle() is None

    def test_cycle_ratio_helper(self):
        g = ring([3, 5], [1, 1])
        assert cycle_ratio(g.edges) == Fraction(8, 2)

    def test_cycle_ratio_zero_transit_raises(self):
        g = ring([3, 5], [0, 0])
        with pytest.raises(ZeroTransitCycleError):
            cycle_ratio(g.edges)


class TestResult:
    def test_check_accepts_consistent(self):
        g = ring([4, 4], [1, 1])
        CycleRatioResult(Fraction(4), g.edges).check()

    def test_check_rejects_mismatch(self):
        g = ring([4, 4], [1, 1])
        with pytest.raises(AssertionError):
            CycleRatioResult(Fraction(5), g.edges).check()

    def test_acyclic_result(self):
        r = CycleRatioResult(None)
        assert r.is_acyclic
        assert r.cycle_nodes() == []
