"""Hypothesis strategies for dataflow structures.

Graphs are built correct-by-construction (consistent, live, token-bound)
so properties quantify over *meaningful* inputs; shrinking still works
because everything derives from plain integer draws.
"""

from __future__ import annotations

from math import gcd

from hypothesis import strategies as st

from repro.sdf.graph import SDFGraph


@st.composite
def live_hsdf_graphs(draw, max_actors: int = 6, max_extra: int = 6, max_time: int = 9):
    """A live, token-bound homogeneous graph (self-loops everywhere,
    zero-token edges follow a drawn topological order)."""
    n = draw(st.integers(min_value=1, max_value=max_actors))
    order = draw(st.permutations(list(range(n))))
    position = {a: i for i, a in enumerate(order)}

    g = SDFGraph("hyp-hsdf")
    for i in range(n):
        g.add_actor(f"h{i}", draw(st.integers(min_value=0, max_value=max_time)))
        g.add_edge(f"h{i}", f"h{i}", tokens=1, name=f"self_h{i}")
    for a, b in zip(order, order[1:]):
        g.add_edge(f"h{a}", f"h{b}")
    if n > 1:
        g.add_edge(
            f"h{order[-1]}",
            f"h{order[0]}",
            tokens=draw(st.integers(min_value=1, max_value=3)),
        )
    extra = draw(st.integers(min_value=0, max_value=max_extra))
    for _ in range(extra):
        if n < 2:
            break
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if a == b:
            continue
        backward = position[a] >= position[b]
        tokens = draw(st.integers(min_value=1, max_value=3)) if backward else 0
        g.add_edge(f"h{a}", f"h{b}", tokens=tokens)
    return g


@st.composite
def live_sdf_graphs(
    draw,
    max_actors: int = 5,
    max_repetition: int = 4,
    max_extra: int = 3,
    max_time: int = 8,
):
    """A consistent, live, token-bound multirate graph: random pipeline
    with minimal consistent rates, feedback with one iteration of
    tokens, self-loops, plus a few consistent extra edges."""
    n = draw(st.integers(min_value=1, max_value=max_actors))
    order = draw(st.permutations(list(range(n))))
    position = {a: i for i, a in enumerate(order)}
    gamma = [draw(st.integers(min_value=1, max_value=max_repetition)) for _ in range(n)]

    g = SDFGraph("hyp-sdf")
    for i in range(n):
        g.add_actor(f"a{i}", draw(st.integers(min_value=0, max_value=max_time)))
        g.add_edge(f"a{i}", f"a{i}", tokens=1, name=f"self_a{i}")

    def add(a: int, b: int, backward: bool) -> None:
        div = gcd(gamma[a], gamma[b])
        p, c = gamma[b] // div, gamma[a] // div
        tokens = gamma[b] * c if backward else 0
        g.add_edge(f"a{a}", f"a{b}", production=p, consumption=c, tokens=tokens)

    for a, b in zip(order, order[1:]):
        add(a, b, backward=False)
    if n > 1:
        add(order[-1], order[0], backward=True)
    extra = draw(st.integers(min_value=0, max_value=max_extra))
    for _ in range(extra):
        if n < 2:
            break
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if a == b:
            continue
        add(a, b, backward=position[a] >= position[b])
    return g
