"""Hypothesis strategies for dataflow structures.

Graphs are built correct-by-construction (consistent, live, token-bound)
so properties quantify over *meaningful* inputs; shrinking still works
because everything derives from plain integer draws.
"""

from __future__ import annotations

from math import gcd

from hypothesis import strategies as st

from repro.sdf.graph import SDFGraph


@st.composite
def live_hsdf_graphs(draw, max_actors: int = 6, max_extra: int = 6, max_time: int = 9):
    """A live, token-bound homogeneous graph (self-loops everywhere,
    zero-token edges follow a drawn topological order)."""
    n = draw(st.integers(min_value=1, max_value=max_actors))
    order = draw(st.permutations(list(range(n))))
    position = {a: i for i, a in enumerate(order)}

    g = SDFGraph("hyp-hsdf")
    for i in range(n):
        g.add_actor(f"h{i}", draw(st.integers(min_value=0, max_value=max_time)))
        g.add_edge(f"h{i}", f"h{i}", tokens=1, name=f"self_h{i}")
    for a, b in zip(order, order[1:]):
        g.add_edge(f"h{a}", f"h{b}")
    if n > 1:
        g.add_edge(
            f"h{order[-1]}",
            f"h{order[0]}",
            tokens=draw(st.integers(min_value=1, max_value=3)),
        )
    extra = draw(st.integers(min_value=0, max_value=max_extra))
    for _ in range(extra):
        if n < 2:
            break
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if a == b:
            continue
        backward = position[a] >= position[b]
        tokens = draw(st.integers(min_value=1, max_value=3)) if backward else 0
        g.add_edge(f"h{a}", f"h{b}", tokens=tokens)
    return g


@st.composite
def consistent_connected_sdf_graphs(
    draw,
    max_actors: int = 5,
    max_repetition: int = 4,
    max_extra_edges: int = 3,
    max_time: int = 8,
    min_time: int = 0,
    max_extra_tokens: int = 0,
    name: str = "hyp-sdf",
):
    """A consistent, connected, live, token-bound multirate SDF graph.

    Construction (correct by construction, so every draw is analysable
    by all three throughput back-ends):

    * draw a repetition vector γ with entries in ``1..max_repetition``
      and wire a pipeline in a drawn actor order with the minimal
      consistent rates ``p = γ(b)/gcd``, ``c = γ(a)/gcd`` — rates are
      therefore bounded by ``max_repetition``;
    * close the pipeline with a feedback edge carrying one iteration of
      tokens (liveness) and give every actor a one-token self-loop
      (token-boundedness / no auto-concurrency);
    * sprinkle ``0..max_extra_edges`` extra consistent edges (backward
      ones carry a full iteration of tokens);
    * when ``max_extra_tokens > 0``, add a drawn surplus of initial
      tokens on the feedback edge (slack never hurts liveness).

    Pass ``min_time=1`` to exclude zero-execution-time cycles (λ = 0:
    throughput degenerates and the state-space simulator rejects them).

    Shrinking stays effective because everything derives from plain
    integer draws.
    """
    n = draw(st.integers(min_value=1, max_value=max_actors))
    order = draw(st.permutations(list(range(n))))
    position = {a: i for i, a in enumerate(order)}
    gamma = [draw(st.integers(min_value=1, max_value=max_repetition)) for _ in range(n)]

    g = SDFGraph(name)
    for i in range(n):
        g.add_actor(f"a{i}", draw(st.integers(min_value=min_time, max_value=max_time)))
        g.add_edge(f"a{i}", f"a{i}", tokens=1, name=f"self_a{i}")

    def add(a: int, b: int, backward: bool, surplus: int = 0) -> None:
        div = gcd(gamma[a], gamma[b])
        p, c = gamma[b] // div, gamma[a] // div
        tokens = gamma[b] * c + surplus if backward else 0
        g.add_edge(f"a{a}", f"a{b}", production=p, consumption=c, tokens=tokens)

    for a, b in zip(order, order[1:]):
        add(a, b, backward=False)
    if n > 1:
        surplus = (
            draw(st.integers(min_value=0, max_value=max_extra_tokens))
            if max_extra_tokens > 0
            else 0
        )
        add(order[-1], order[0], backward=True, surplus=surplus)
    extra = draw(st.integers(min_value=0, max_value=max_extra_edges))
    for _ in range(extra):
        if n < 2:
            break
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if a == b:
            continue
        add(a, b, backward=position[a] >= position[b])
    return g


@st.composite
def live_sdf_graphs(
    draw,
    max_actors: int = 5,
    max_repetition: int = 4,
    max_extra: int = 3,
    max_time: int = 8,
):
    """A consistent, live, token-bound multirate graph: random pipeline
    with minimal consistent rates, feedback with one iteration of
    tokens, self-loops, plus a few consistent extra edges."""
    return draw(
        consistent_connected_sdf_graphs(
            max_actors=max_actors,
            max_repetition=max_repetition,
            max_extra_edges=max_extra,
            max_time=max_time,
        )
    )


@st.composite
def shuffled_clones(draw, graph: SDFGraph):
    """A structurally identical copy of ``graph`` rebuilt in a drawn
    actor/edge insertion order (same fingerprint, different memory
    layout) — for cache-coherence properties."""
    clone = SDFGraph(graph.name + "-shuffled")
    for actor_name in draw(st.permutations(graph.actor_names)):
        clone.add_actor(actor_name, graph.actor(actor_name).execution_time)
    for edge in draw(st.permutations(graph.edges)):
        clone.add_edge(
            edge.source,
            edge.target,
            edge.production,
            edge.consumption,
            edge.tokens,
            name=edge.name,
        )
    return clone
