"""The tiered fallback policy: exactness, degradation, Theorem-1 soundness."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import consistent_connected_sdf_graphs, live_hsdf_graphs

from repro.analysis.cache import AnalysisCache
from repro.analysis.deadline import CancelToken
from repro.analysis.resilience import (
    CONSERVATIVE,
    DEFAULT_STAGES,
    EXACT,
    TIMED_OUT,
    AnalysisPolicy,
    analyse_with_policy,
)
from repro.analysis.throughput import throughput
from repro.errors import DeadlockError, ReproError
from repro.graphs.dsp import satellite_receiver
from repro.graphs.examples import figure3_graph
from repro.graphs.multimedia import mp3_playback
from repro.sdf.graph import SDFGraph


#: Stage timeouts that starve every exact stage while leaving the
#: abstraction stage unbounded-ish — forces the Theorem 1 fallback.
FORCE_FALLBACK = {"simulation": 0.001, "symbolic": 0.001}


class TestExactPath:
    def test_plenty_of_budget_is_exact(self):
        outcome = analyse_with_policy(figure3_graph(), timeout=60.0)
        assert outcome.status == EXACT
        assert outcome.sound
        assert outcome.cycle_time_bound == throughput(figure3_graph()).cycle_time
        assert outcome.provenance[-1].ok

    def test_no_timeout_runs_unbounded(self):
        outcome = analyse_with_policy(figure3_graph())
        assert outcome.status == EXACT

    def test_failed_stages_recorded_in_provenance(self):
        policy = AnalysisPolicy(timeout=30.0, stage_timeouts=FORCE_FALLBACK)
        outcome = policy.run(mp3_playback())
        stages = [a.stage for a in outcome.provenance]
        assert stages[:2] == ["simulation", "symbolic"]
        assert all(a.status == "timeout" for a in outcome.provenance[:2])
        assert all(a.progress for a in outcome.provenance[:2])

    def test_deadlock_is_not_degradable(self):
        g = SDFGraph("deadlocked")
        g.add_actor("A", 1)
        g.add_actor("B", 1)
        g.add_edge("A", "B", tokens=0)
        g.add_edge("B", "A", tokens=0)
        with pytest.raises(DeadlockError):
            analyse_with_policy(g, timeout=10.0)


class TestConservativeFallback:
    @pytest.mark.parametrize("factory", [mp3_playback, satellite_receiver])
    def test_fallback_bound_is_sound_on_registry(self, factory):
        g = factory()
        policy = AnalysisPolicy(timeout=30.0, stage_timeouts=FORCE_FALLBACK)
        outcome = policy.run(g)
        assert outcome.status == CONSERVATIVE
        assert outcome.method == "abstraction"
        exact = throughput(g).cycle_time
        # Theorem 1: bound = N * lambda' >= exact iteration period.
        assert outcome.cycle_time_bound >= exact
        assert (
            outcome.cycle_time_bound
            == outcome.bound_phase_count * outcome.bound_abstract_cycle_time
        )
        assert outcome.bound_strategy in ("name", "structural")

    def test_per_actor_bounds_are_lower_bounds(self):
        g = mp3_playback()
        policy = AnalysisPolicy(timeout=30.0, stage_timeouts=FORCE_FALLBACK)
        outcome = policy.run(g)
        exact = throughput(g)
        for actor, rate in outcome.per_actor_bounds.items():
            assert rate <= exact.per_actor[actor]

    def test_timed_out_outcome_has_no_rates(self):
        policy = AnalysisPolicy(
            timeout=0.003,
            stage_timeouts={"simulation": 0.001, "symbolic": 0.001,
                            "abstraction": 0.001},
        )
        outcome = policy.run(mp3_playback())
        assert outcome.status == TIMED_OUT
        assert not outcome.sound
        with pytest.raises(ReproError):
            outcome.per_actor_bounds

    def test_cancellation_stops_the_whole_chain(self):
        token = CancelToken()
        token.cancel("shutting down")
        outcome = analyse_with_policy(mp3_playback(), timeout=30.0, token=token)
        assert outcome.status == TIMED_OUT
        assert outcome.provenance[0].status == "cancelled"
        assert len(outcome.provenance) == 1  # no stage after a cancel

    def test_describe_mentions_provenance(self):
        policy = AnalysisPolicy(timeout=30.0, stage_timeouts=FORCE_FALLBACK)
        text = policy.run(mp3_playback()).describe()
        assert "conservative-bound" in text
        assert "Theorem 1" in text
        assert "simulation: timeout" in text

    def test_exact_results_shared_with_cache(self):
        cache = AnalysisCache()
        g = figure3_graph()
        outcome = analyse_with_policy(g, timeout=60.0, cache=cache)
        assert outcome.status == EXACT
        # The policy's exact result is the cached one.
        assert cache.throughput(g, method=outcome.method) is outcome.result

    def test_timeouts_never_cached_as_final(self):
        cache = AnalysisCache()
        g = mp3_playback()
        policy = AnalysisPolicy(timeout=30.0, stage_timeouts=FORCE_FALLBACK)
        outcome = policy.run(g, cache=cache)
        assert outcome.status == CONSERVATIVE
        assert cache.lookup(g, "throughput", {"method": "simulation"}) is None
        assert cache.lookup(g, "throughput", {"method": "symbolic"}) is None
        assert cache.stats().errors >= 2
        # A later exact run with budget still computes and caches cleanly.
        exact = cache.throughput(g, method="symbolic")
        assert exact.cycle_time == throughput(g).cycle_time


class TestSoundnessProperties:
    """Hypothesis: the fallback answer is never optimistic."""

    @given(g=live_hsdf_graphs(max_actors=6))
    @settings(max_examples=40, deadline=None)
    def test_homogeneous_fallback_never_exceeds_exact_throughput(self, g):
        policy = AnalysisPolicy(timeout=30.0, stage_timeouts=FORCE_FALLBACK)
        try:
            outcome = policy.run(g)
        except DeadlockError:
            return  # definitive verdict, nothing to bound
        if outcome.status == TIMED_OUT or outcome.unbounded:
            return
        exact = throughput(g)
        if exact.unbounded:
            return
        assert outcome.cycle_time_bound >= exact.cycle_time
        for actor, rate in outcome.per_actor_bounds.items():
            assert rate <= exact.per_actor[actor]

    @given(g=consistent_connected_sdf_graphs(max_actors=4, min_time=1))
    @settings(max_examples=25, deadline=None)
    def test_multirate_fallback_never_exceeds_exact_throughput(self, g):
        """Multirate graphs go through the period-preserving Algorithm 1
        conversion before abstraction; the scaled bound must still be a
        sound upper bound on the true iteration period."""
        policy = AnalysisPolicy(timeout=30.0, stage_timeouts=FORCE_FALLBACK)
        try:
            outcome = policy.run(g)
        except DeadlockError:
            return
        if outcome.status == TIMED_OUT or outcome.unbounded:
            return
        exact = throughput(g)
        if exact.unbounded:
            return
        assert outcome.cycle_time_bound >= exact.cycle_time

    @given(
        g=consistent_connected_sdf_graphs(max_actors=4, min_time=1),
        budget=st.sampled_from([0.0005, 0.002, 0.01]),
    )
    @settings(max_examples=25, deadline=None)
    def test_interrupted_analysis_never_corrupts_state(self, g, budget):
        """Re-running after a timeout gives exactly the fresh answer."""
        from repro.analysis.deadline import Deadline
        from repro.errors import AnalysisTimeout

        fingerprint = g.fingerprint()
        try:
            first = throughput(g, deadline=Deadline.after(budget))
        except AnalysisTimeout:
            first = None
        except DeadlockError:
            return
        assert g.fingerprint() == fingerprint
        try:
            fresh = throughput(g)
        except DeadlockError:
            return
        assert throughput(g).cycle_time == fresh.cycle_time
        if first is not None:
            assert first.cycle_time == fresh.cycle_time


class TestPolicyValidation:
    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError):
            AnalysisPolicy(stages=("simulation", "magic"))

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            AnalysisPolicy(stages=())

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError):
            AnalysisPolicy(timeout=0.0)

    def test_default_stages_are_the_paper_ladder(self):
        assert DEFAULT_STAGES == ("simulation", "symbolic", "abstraction")
