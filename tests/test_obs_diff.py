"""A/B telemetry diffs: structural matching, noise floor, renderings."""

from __future__ import annotations

import json

import pytest

from repro.obs.check import validate_trace_diff
from repro.obs.diff import (
    TRACE_DIFF_SCHEMA,
    apply_noise_floor,
    diff_documents,
    diff_files,
    render_diff_html,
    render_diff_text,
)


def _summary(stages):
    """A minimal repro-trace-summary-v1 carrying just the stage table."""
    return {
        "schema": "repro-trace-summary-v1",
        "stages": [
            {"stage": stage, "graph": graph, "kernel": kernel,
             "count": 1, "total_seconds": self_s, "self_seconds": self_s}
            for stage, graph, kernel, self_s in stages
        ],
    }


A = _summary([
    ("mcm", "modem", "numpy", 1.0),
    ("convert", "modem", None, 0.5),
    ("lint", "modem", None, 0.2),
    ("steady", "modem", None, 0.1),
])
B = _summary([
    ("mcm", "modem", "numpy", 2.0),       # 2x slower: regressed
    ("convert", "modem", None, 0.25),     # 2x faster: improved
    ("lint", "modem", None, 0.202),       # +1%: below the noise floor
    ("parse", "modem", None, 0.05),       # new on the B side
])


class TestApplyNoiseFloor:
    def test_clamps_below_floor(self):
        assert apply_noise_floor(-0.013, 0.0) == (0.0, True)
        assert apply_noise_floor(0.08, 0.0) == (0.08, False)

    def test_is_the_primitive_behind_bench_noise_floored(self):
        import pathlib
        import sys

        root = pathlib.Path(__file__).parent.parent
        sys.path.insert(0, str(root / "benchmarks"))
        try:
            import bench_common
        finally:
            sys.path.pop(0)
        floored = bench_common.noise_floored("x", "ratio", -0.004)
        assert floored["value"] == 0.0
        assert floored["meta"]["measured"] == -0.004
        assert floored["meta"]["noise_floored"] is True


class TestTraceSummaryDiff:
    def test_directions_and_noise_floor(self):
        diff = diff_documents(A, B, noise_floor=0.05)
        assert diff["schema"] == TRACE_DIFF_SCHEMA
        assert diff["kind"] == "trace-summary"
        by_key = {r["key"]: r for r in diff["rows"]}
        assert by_key["mcm/modem/numpy"]["direction"] == "regressed"
        assert by_key["mcm/modem/numpy"]["relative"] == pytest.approx(1.0)
        assert by_key["convert/modem/-"]["direction"] == "improved"
        lint = by_key["lint/modem/-"]
        assert lint["direction"] == "unchanged"
        assert lint["relative"] == 0.0
        assert lint["noise_floored"] is True
        assert lint["measured_relative"] == pytest.approx(0.01)
        assert by_key["parse/modem/-"]["direction"] == "added"
        assert by_key["steady/modem/-"]["direction"] == "removed"
        assert diff["counts"] == {"regressed": 1, "improved": 1, "added": 1,
                                  "removed": 1, "unchanged": 1}
        validate_trace_diff(diff)

    def test_loudest_changes_sort_first(self):
        diff = diff_documents(A, B, noise_floor=0.05)
        assert diff["rows"][0]["key"] == "mcm/modem/numpy"
        assert [r["direction"] for r in diff["rows"]] == [
            "regressed", "improved", "added", "removed", "unchanged"]

    def test_totals(self):
        diff = diff_documents(A, B)
        assert diff["totals"]["a"] == pytest.approx(1.8)
        assert diff["totals"]["b"] == pytest.approx(2.502)

    def test_mismatched_kinds_rejected(self):
        metrics = {"schema": "repro-metrics-v1", "metrics": []}
        with pytest.raises(ValueError, match="cannot diff"):
            diff_documents(A, metrics)
        with pytest.raises(ValueError, match="expected"):
            diff_documents({"schema": "repro-bench-v1"}, A)


class TestMetricsDiff:
    def test_counters_and_histograms(self):
        def snapshot(ok, histo_count, histo_sum):
            return {
                "schema": "repro-metrics-v1",
                "metrics": [
                    {"name": "repro_batch_results_total", "type": "counter",
                     "samples": [{"labels": {"status": "ok"}, "value": ok}]},
                    {"name": "repro_analysis_seconds", "type": "histogram",
                     "samples": [{"labels": {}, "count": histo_count,
                                  "sum": histo_sum, "buckets": {}}]},
                ],
            }

        diff = diff_documents(snapshot(8, 8, 1.0), snapshot(16, 16, 4.0))
        by_key = {r["key"]: r for r in diff["rows"]}
        assert by_key['repro_batch_results_total{status=ok}']["delta"] == 8
        assert by_key["repro_analysis_seconds.count"]["b"] == 16
        assert by_key["repro_analysis_seconds.sum"]["relative"] == \
            pytest.approx(3.0)
        assert diff["kind"] == "metrics"
        validate_trace_diff(diff)


class TestRenderings:
    def test_text_mentions_noise_floor_and_totals(self):
        text = render_diff_text(diff_documents(A, B, noise_floor=0.05))
        assert "noise floor 5%" in text
        assert "1 regressed" in text
        assert "~0% (measured +1.0%)" in text
        assert text.strip().splitlines()[-1].startswith("total:")

    def test_html_is_self_contained_and_badged(self):
        page = render_diff_html(diff_documents(A, B))
        assert page.startswith("<!DOCTYPE html>")
        assert "badge fail" in page  # a regression is present
        assert "mcm/modem/numpy" in page
        clean = render_diff_html(diff_documents(A, A))
        assert "badge ok" in clean

    def test_diff_files_labels_by_path(self, tmp_path):
        pa, pb = tmp_path / "a.json", tmp_path / "b.json"
        pa.write_text(json.dumps(A))
        pb.write_text(json.dumps(B))
        diff = diff_files(pa, pb, noise_floor=0.05)
        assert diff["a"] == str(pa) and diff["b"] == str(pb)
        validate_trace_diff(diff)
