"""The cyclo-static application models."""

from fractions import Fraction

import pytest

from repro.analysis.throughput import throughput
from repro.csdf import (
    csdf_repetition_vector,
    csdf_throughput,
    csdf_to_hsdf,
    is_csdf_live,
)
from repro.csdf.analysis import is_csdf_consistent
from repro.graphs.csdf_apps import ip_frame_decoder, polyphase_cd2dat


class TestPolyphase:
    def test_consistent_and_live(self):
        g = polyphase_cd2dat()
        assert is_csdf_consistent(g)
        assert is_csdf_live(g)

    def test_rate_structure(self):
        gamma = csdf_repetition_vector(polyphase_cd2dat())
        # Cycle balance: cd feeds poly 1:1 per phase triple; poly emits
        # 2 per cycle into s2 (consumes 7/firing); s2 emits 2 into dat
        # (consumes 3): k(poly)·2 = k(s2)·7, k(s2)·2 = k(dat)·3.
        assert gamma["poly"] == 3 * gamma["cd"] // 1 or gamma["cd"] % 1 == 0
        assert gamma["poly"] % 3 == 0  # whole phase cycles
        ratio = Fraction(gamma["poly"] // 3, 1)
        assert Fraction(gamma["s2"]) == ratio * Fraction(2, 7)

    def test_compact_conversion(self):
        g = polyphase_cd2dat()
        conv = csdf_to_hsdf(g)
        assert conv.within_paper_bounds()
        assert (
            throughput(conv.graph, method="hsdf").cycle_time
            == csdf_throughput(g).cycle_time
        )

    def test_polyphase_tighter_than_monolithic(self):
        # The polyphase stage starts emitting after one input sample,
        # not after three: the first 'mid' tokens appear earlier than a
        # monolithic 3-in/2-out stage could produce them.
        from repro.csdf.conversion import csdf_to_sdf_approximation

        g = polyphase_cd2dat()
        exact = csdf_throughput(g).cycle_time
        aggregated = throughput(csdf_to_sdf_approximation(g)).cycle_time
        assert aggregated >= exact  # conservative, usually strictly


class TestIpDecoder:
    @pytest.mark.parametrize("p_frames", [1, 3, 6])
    def test_consistent_live(self, p_frames):
        g = ip_frame_decoder(p_frames)
        assert is_csdf_consistent(g)
        assert is_csdf_live(g)

    def test_gop_phase_structure(self):
        g = ip_frame_decoder(3)
        assert g.phase_count("parse") == 4
        gamma = csdf_repetition_vector(g)
        assert gamma["parse"] == 4      # one GOP per iteration
        assert gamma["render"] == 7     # 4 + 1 + 1 + 1 blocks

    def test_throughput_reflects_gop_mix(self):
        short = csdf_throughput(ip_frame_decoder(1))
        long = csdf_throughput(ip_frame_decoder(6))
        # More P frames per GOP: cheaper average per frame.
        per_frame_short = short.cycle_time / 2
        per_frame_long = long.cycle_time / 7
        assert per_frame_long < per_frame_short

    def test_compact_conversion_equivalent(self):
        g = ip_frame_decoder(3)
        conv = csdf_to_hsdf(g)
        assert (
            throughput(conv.graph, method="hsdf").cycle_time
            == csdf_throughput(g).cycle_time
        )

    def test_bad_gop_rejected(self):
        with pytest.raises(ValueError):
            ip_frame_decoder(0)
