"""Observability through the CLI: --version, --trace, --metrics, profile."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.check import (
    validate_chrome_trace,
    validate_metrics_snapshot,
    validate_prometheus_text,
    validate_span_jsonl,
)
from repro.analysis.cache import AnalysisCache, set_default_cache
from repro.obs.metrics import MetricsRegistry, set_default_registry


@pytest.fixture(autouse=True)
def fresh_observability_state():
    """Isolate each test from the process-global registry *and* cache
    (a warm default cache would swallow the spans these tests assert)."""
    previous_registry = set_default_registry(MetricsRegistry())
    previous_cache = set_default_cache(AnalysisCache())
    try:
        yield
    finally:
        set_default_registry(previous_registry)
        set_default_cache(previous_cache)


class TestVersion:
    def test_version_flag_reports_pyproject_version(self, capsys):
        import pathlib
        import re

        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

        pyproject = pathlib.Path(__file__).parent.parent / "pyproject.toml"
        declared = re.search(r'^version\s*=\s*"([^"]+)"',
                             pyproject.read_text(), re.MULTILINE)
        assert declared and declared.group(1) == __version__


class TestTraceFlag:
    def test_throughput_writes_nested_chrome_trace(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        assert main(["throughput", "builtin:figure3",
                     "--trace", str(trace)]) == 0
        data = json.loads(trace.read_text())
        validate_chrome_trace(data)
        complete = [e for e in data["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in complete}
        assert {"throughput", "repetition-vector", "symbolic-conversion",
                "mcm-eigenvalue"} <= set(by_name)
        # Stage spans nest inside the analysis root on the timeline.
        root = by_name["throughput"]
        for stage in ("symbolic-conversion", "mcm-eigenvalue"):
            event = by_name[stage]
            assert root["ts"] <= event["ts"]
            assert event["ts"] + event["dur"] <= root["ts"] + root["dur"]

    def test_jsonl_extension_selects_span_log(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(["throughput", "builtin:figure3",
                     "--trace", str(trace)]) == 0
        summary = validate_span_jsonl(trace.read_text())
        assert summary["spans"] >= 3

    def test_lint_supports_trace(self, tmp_path):
        trace = tmp_path / "lint.json"
        assert main(["lint", "builtin:figure3",
                     "--trace", str(trace)]) == 0
        data = json.loads(trace.read_text())
        names = {e["name"] for e in data["traceEvents"] if e["ph"] == "X"}
        assert "lint" in names


class TestMetricsFlag:
    def test_prometheus_extension(self, tmp_path):
        path = tmp_path / "metrics.prom"
        assert main(["throughput", "builtin:figure3",
                     "--metrics", str(path)]) == 0
        text = path.read_text()
        validate_prometheus_text(text)
        assert "repro_cache_" in text

    def test_json_snapshot(self, tmp_path):
        path = tmp_path / "metrics.json"
        assert main(["lint", "builtin:figure1",
                     "--metrics", str(path)]) == 0
        data = json.loads(path.read_text())
        validate_metrics_snapshot(data)
        names = {m["name"] for m in data["metrics"]}
        assert "repro_lint_findings_total" in names


class TestProfile:
    def test_profile_prints_stage_cost_table(self, capsys):
        assert main(["profile", "builtin:figure3"]) == 0
        out = capsys.readouterr().out
        # Default comparison: symbolic (paper) vs. classical expansion.
        assert "symbolic" in out
        assert "hsdf" in out
        for column in ("wall", "cpu", "peak"):
            assert column in out

    def test_profile_single_method(self, capsys):
        assert main(["profile", "builtin:figure3",
                     "--method", "symbolic"]) == 0
        out = capsys.readouterr().out
        assert "symbolic" in out
        assert "hsdf" not in out


class TestBatchObservability:
    def test_process_backend_merges_worker_lanes(self, tmp_path):
        trace = tmp_path / "batch.json"
        metrics = tmp_path / "batch.prom"
        assert main(["batch", "--registry", "--backend", "process",
                     "--workers", "2",
                     "--trace", str(trace),
                     "--metrics", str(metrics)]) == 0
        data = json.loads(trace.read_text())
        validate_chrome_trace(data)
        events = data["traceEvents"]
        pids = {e["pid"] for e in events}
        assert len(pids) >= 2, "worker spans must land in their own lanes"
        lanes = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert any(name.startswith("worker[") for name in lanes)
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert "batch" in names and "analyse" in names

        text = metrics.read_text()
        validate_prometheus_text(text)
        # Worker-side registries were merged into one parent snapshot.
        assert 'repro_batch_results_total{status="ok"}' in text

    def test_serial_batch_counts_outcomes(self, tmp_path):
        metrics = tmp_path / "batch.json"
        assert main(["batch", "builtin:figure3", "builtin:figure1",
                     "--backend", "serial",
                     "--metrics", str(metrics)]) == 0
        data = json.loads(metrics.read_text())
        validate_metrics_snapshot(data)
        by_name = {m["name"]: m for m in data["metrics"]}
        outcomes = by_name["repro_batch_results_total"]
        total = sum(s["value"] for s in outcomes["samples"])
        assert total == 2


class TestResilienceSpanIds:
    def test_outcome_records_carry_span_ids_under_tracer(self):
        from repro.analysis.resilience import AnalysisPolicy
        from repro.graphs.examples import figure3_graph
        from repro.obs.trace import Tracer

        with Tracer() as tracer:
            outcome = AnalysisPolicy().run(figure3_graph())
        span_ids = {s.id for s in tracer.spans()}
        assert outcome.span_id in span_ids
        assert outcome.provenance
        assert all(a.span_id in span_ids for a in outcome.provenance)

    def test_span_ids_absent_when_disabled(self):
        from repro.analysis.resilience import AnalysisPolicy
        from repro.graphs.examples import figure3_graph

        outcome = AnalysisPolicy().run(figure3_graph())
        assert outcome.span_id is None
        assert all(a.span_id is None for a in outcome.provenance)


class TestExplain:
    def test_explain_writes_verified_artifacts(self, capsys, tmp_path):
        from repro.graphs import modem
        from repro.obs.check import validate_provenance
        from repro.obs.provenance import verify_witness

        cert = tmp_path / "cert.json"
        html = tmp_path / "cert.html"
        dot = tmp_path / "cert.dot"
        assert main(["explain", "builtin:modem",
                     "--json", str(cert), "--html", str(html),
                     "--dot", str(dot), "--require-witness"]) == 0
        out = capsys.readouterr().out
        assert "witness" in out and "reduction steps" in out
        data = json.loads(cert.read_text())
        validate_provenance(data)
        # The shipped certificate re-verifies on a fresh graph build.
        verify_witness(modem(), data)
        page = html.read_text()
        assert page.startswith("<!DOCTYPE html>") and data["graph"] in page
        assert "digraph" in dot.read_text()

    def test_explain_forced_abstraction_is_conservative(self, capsys, tmp_path):
        from repro.graphs import mp3_playback
        from repro.obs.provenance import verify_witness

        cert = tmp_path / "cert.json"
        assert main(["explain", "builtin:mp3-playback",
                     "--stages", "abstraction",
                     "--json", str(cert), "--require-witness"]) == 0
        data = json.loads(cert.read_text())
        assert data["status"] == "conservative-bound"
        assert data["witness"]["space"] == "abstract"
        assert [t["tier"] for t in data["tiers"]] == ["abstraction"]
        assert data["bound_phase_count"] is not None
        verify_witness(mp3_playback(), data)
        assert "conservative" in capsys.readouterr().out


class TestProfileJson:
    def test_profile_format_json_validates(self, capsys):
        from repro.obs.check import validate_profile

        assert main(["profile", "builtin:figure3", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert validate_profile(data)["rows"] > 0


class TestObsFamily:
    """The `repro obs ...` analytics subcommands, end to end."""

    def _trace(self, tmp_path, name="trace.jsonl"):
        path = tmp_path / name
        assert main(["throughput", "builtin:figure3",
                     "--trace", str(path)]) == 0
        return path

    def test_analyze_text_report(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        assert main(["obs", "analyze", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "self-time attribution" in out
        assert "critical path" in out
        assert "mcm-eigenvalue" in out

    def test_analyze_json_artifact_validates(self, tmp_path, capsys):
        from repro.obs.check import validate_trace_summary

        trace = self._trace(tmp_path)
        summary_path = tmp_path / "summary.json"
        assert main(["obs", "analyze", str(trace),
                     "--json", str(summary_path)]) == 0
        summary = json.loads(summary_path.read_text())
        verdict = validate_trace_summary(summary)
        assert verdict["spans"] >= 3
        # Stage self times never exceed the root wall time.
        total_self = sum(r["self_seconds"] for r in summary["stages"])
        assert total_self <= summary["wall_seconds"] + 1e-9

    def test_analyze_folds_both_formats(self, tmp_path, capsys):
        jsonl = self._trace(tmp_path, "a.jsonl")
        chrome = tmp_path / "b.json"
        assert main(["throughput", "builtin:figure3",
                     "--trace", str(chrome)]) == 0
        capsys.readouterr()  # drain the analysis output
        assert main(["obs", "analyze", str(jsonl), str(chrome),
                     "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert len(summary["sources"]) == 2

    def test_flame_output_is_collapsed_stack_format(self, tmp_path):
        import re

        from repro.obs.check import validate_collapsed

        trace = self._trace(tmp_path)
        folded = tmp_path / "trace.folded"
        assert main(["obs", "flame", str(trace),
                     "--output", str(folded)]) == 0
        text = folded.read_text()
        validate_collapsed(text)
        for line in text.splitlines():
            assert re.fullmatch(r"[^ ]+(?:;[^ ]+)* \d+", line)
        assert any(line.startswith("throughput;")
                   for line in text.splitlines())

    def test_diff_of_two_runs(self, tmp_path, capsys):
        a = self._trace(tmp_path, "a.jsonl")
        b = self._trace(tmp_path, "b.jsonl")
        sa, sb = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["obs", "analyze", str(a), "--json", str(sa)]) == 0
        assert main(["obs", "analyze", str(b), "--json", str(sb)]) == 0
        assert main(["obs", "diff", str(sa), str(sb)]) == 0
        out = capsys.readouterr().out
        assert "trace-summary diff" in out
        html_path = tmp_path / "diff.html"
        assert main(["obs", "diff", str(sa), str(sb),
                     "--format", "html", "--output", str(html_path)]) == 0
        assert html_path.read_text().startswith("<!DOCTYPE html>")

    def test_diff_rejects_mismatched_kinds(self, tmp_path, capsys):
        summary = tmp_path / "s.json"
        a = self._trace(tmp_path)
        assert main(["obs", "analyze", str(a), "--json", str(summary)]) == 0
        metrics = tmp_path / "m.json"
        assert main(["throughput", "builtin:figure3",
                     "--metrics", str(metrics)]) == 0
        assert main(["obs", "diff", str(summary), str(metrics)]) == 1

    def test_obs_check_is_the_cli_home_for_the_validator(self, tmp_path,
                                                         capsys):
        trace = self._trace(tmp_path)
        assert main(["obs", "check", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"id": "1"}\n')
        assert main(["obs", "check", str(bad)]) == 1

    def test_module_entrypoint_stays_an_alias(self, tmp_path):
        import subprocess
        import sys

        trace = self._trace(tmp_path)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs.check", str(trace)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0
        assert "ok" in proc.stdout
