"""The traditional SDF-to-HSDF conversion (the paper's baseline)."""

import random

import pytest

from repro.analysis.throughput import throughput
from repro.graphs import TABLE1_CASES
from repro.graphs.examples import figure3_graph
from repro.graphs.random_sdf import random_consistent_sdf
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import iteration_length, repetition_vector
from repro.sdf.schedule import is_live
from repro.sdf.transform import firing_name, traditional_hsdf


class TestStructure:
    def test_actor_count_is_iteration_length(self, two_actor_multirate):
        h = traditional_hsdf(two_actor_multirate)
        assert h.actor_count() == iteration_length(two_actor_multirate)

    def test_result_is_homogeneous(self, two_actor_multirate):
        assert traditional_hsdf(two_actor_multirate).is_homogeneous()

    def test_execution_times_copied_to_copies(self, two_actor_multirate):
        h = traditional_hsdf(two_actor_multirate)
        assert h.execution_time(firing_name("A", 0)) == 3
        assert h.execution_time(firing_name("A", 1)) == 3
        assert h.execution_time(firing_name("B", 0)) == 1

    def test_homogeneous_graph_maps_to_itself_modulo_names(self, simple_ring):
        h = traditional_hsdf(simple_ring)
        assert h.actor_count() == simple_ring.actor_count()
        assert h.edge_count() == simple_ring.edge_count()
        assert h.total_tokens() == simple_ring.total_tokens()

    @pytest.mark.parametrize("case", TABLE1_CASES, ids=lambda c: c.name)
    def test_table1_traditional_sizes(self, case):
        if case.paper_traditional > 2000:
            pytest.skip("large expansion covered by the benchmark harness")
        h = traditional_hsdf(case.build())
        assert h.actor_count() == case.paper_traditional


class TestDependencyFormula:
    def test_self_loop_serialises_copies(self):
        g = SDFGraph()
        g.add_actor("a", 1)
        g.add_actor("b", 1)
        g.add_edge("a", "b", production=1, consumption=3)
        g.add_edge("b", "a", production=3, consumption=1, tokens=3)
        g.add_edge("a", "a", tokens=1)
        h = traditional_hsdf(g)
        # a has γ=3: chain a#0 → a#1 → a#2 with wrap-around delay.
        assert any(
            e.source == "a#0" and e.target == "a#1" and e.tokens == 0
            for e in h.edges
        )
        assert any(
            e.source == "a#2" and e.target == "a#0" and e.tokens == 1
            for e in h.edges
        )

    def test_initial_tokens_create_iteration_delays(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b", tokens=1)
        g.add_edge("b", "a", tokens=1)
        h = traditional_hsdf(g)
        delays = {(e.source, e.target): e.tokens for e in h.edges}
        assert delays == {("a#0", "b#0"): 1, ("b#0", "a#0"): 1}

    def test_figure3_expansion(self):
        h = traditional_hsdf(figure3_graph())
        assert h.actor_count() == 3
        delays = {(e.source, e.target): e.tokens for e in h.edges}
        # L#1 consumes the self-loop token L#0 produced (same iteration).
        assert delays[("L#0", "L#1")] == 0
        # L#0 consumes the self-loop token of the previous iteration.
        assert delays[("L#1", "L#0")] == 1
        # R consumes both L outputs of the current iteration.
        assert delays[("L#0", "R#0")] == 0
        assert delays[("L#1", "R#0")] == 0
        # R→L channel: two tokens, consumed by this iteration's L firings.
        assert delays[("R#0", "L#0")] == 1
        assert delays[("R#0", "L#1")] == 1

    def test_rates_spanning_multiple_firings(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b", production=2, consumption=3)
        g.add_edge("b", "a", production=3, consumption=2, tokens=6)
        h = traditional_hsdf(g)  # γ = (3, 2)
        # b#0 consumes tokens 0,1,2 produced by a#0 (0,1) and a#1 (2).
        targets_of_b0 = {
            e.source for e in h.in_edges("b#0") if e.tokens == 0
        }
        assert targets_of_b0 == {"a#0", "a#1"}

    def test_parallel_sdf_edges_keep_min_delay(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b", tokens=0)
        g.add_edge("a", "b", tokens=5)
        g.add_edge("b", "a", tokens=1)
        h = traditional_hsdf(g)
        (edge,) = [e for e in h.edges if e.source == "a#0" and e.target == "b#0"]
        assert edge.tokens == 0


class TestSemanticEquivalence:
    def test_liveness_preserved(self, two_actor_multirate):
        assert is_live(traditional_hsdf(two_actor_multirate))

    def test_throughput_preserved_small(self, two_actor_multirate):
        original = throughput(two_actor_multirate, method="symbolic")
        expanded = throughput(traditional_hsdf(two_actor_multirate), method="hsdf")
        assert original.cycle_time == expanded.cycle_time

    def test_figure3_throughput_preserved(self):
        g = figure3_graph()
        assert (
            throughput(g, method="symbolic").cycle_time
            == throughput(traditional_hsdf(g), method="hsdf").cycle_time
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs_throughput_preserved(self, seed):
        rng = random.Random(seed)
        g = random_consistent_sdf(rng, n_actors=4, extra_edges=2, max_repetition=4)
        original = throughput(g, method="symbolic")
        expanded = throughput(traditional_hsdf(g), method="hsdf")
        assert original.cycle_time == expanded.cycle_time

    def test_copies_fire_once_per_iteration(self, two_actor_multirate):
        h = traditional_hsdf(two_actor_multirate)
        assert set(repetition_vector(h).values()) == {1}
