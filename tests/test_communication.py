"""Communication-aware platform binding."""

from fractions import Fraction

import pytest

from repro.analysis.throughput import throughput
from repro.errors import ValidationError
from repro.graphs.examples import figure3_graph
from repro.mapping import Mapping, greedy_load_balance
from repro.mapping.communication import (
    bind_with_communication,
    communication_mapping,
    insert_communication,
)
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import is_consistent, repetition_vector
from repro.sdf.schedule import is_live


def pipeline2():
    g = SDFGraph("p2")
    g.add_actor("a", 3)
    g.add_actor("b", 2)
    g.add_edge("a", "a", tokens=1, name="self_a")
    g.add_edge("b", "b", tokens=1, name="self_b")
    g.add_edge("a", "b", name="ab")
    g.add_edge("b", "a", tokens=2, name="ba")
    return g


def split_mapping():
    return Mapping(assignment={"a": "p0", "b": "p1"})


class TestInsertion:
    def test_crossing_channels_split(self):
        g = insert_communication(pipeline2(), split_mapping(), latency=4)
        assert g.has_actor("comm_ab") and g.has_actor("comm_ba")
        assert g.execution_time("comm_ab") == 4

    def test_intra_processor_channels_untouched(self):
        same = Mapping(assignment={"a": "p0", "b": "p0"})
        g = insert_communication(pipeline2(), same, latency=4)
        assert not any(a.name.startswith("comm_") for a in g.actors)

    def test_self_loops_untouched(self):
        g = insert_communication(pipeline2(), split_mapping(), latency=4)
        assert g.edge("self_a").is_self_loop

    def test_tokens_move_to_delivery_side(self):
        g = insert_communication(pipeline2(), split_mapping(), latency=4)
        assert g.edge("ba").tokens == 2
        assert g.edge("ba").source == "comm_ba"
        assert g.edge("ba__send").tokens == 0

    def test_consistent_and_live(self):
        g = insert_communication(pipeline2(), split_mapping(), latency=4)
        assert is_consistent(g) and is_live(g)

    def test_multirate_split_repetition(self):
        g = figure3_graph()
        mapping = Mapping(assignment={"L": "p0", "R": "p1"})
        with_comm = insert_communication(g, mapping, latency=1)
        gamma = repetition_vector(with_comm)
        # L→R channel moves 2 tokens per iteration: comm fires twice.
        assert gamma["comm_data"] == 2
        assert is_live(with_comm)

    def test_zero_latency_preserves_cycle_time_when_unshared(self):
        g = pipeline2()
        base = throughput(g).cycle_time
        with_comm = insert_communication(g, split_mapping(), latency=0)
        assert throughput(with_comm).cycle_time == base


class TestMappingExtension:
    def test_infinite_gives_private_links(self):
        g = insert_communication(pipeline2(), split_mapping(), latency=4)
        full = communication_mapping(g, split_mapping(), "infinite")
        assert full.assignment["comm_ab"] == "link_comm_ab"
        assert full.assignment["comm_ba"] == "link_comm_ba"

    def test_shared_gives_one_noc(self):
        g = insert_communication(pipeline2(), split_mapping(), latency=4)
        full = communication_mapping(g, split_mapping(), "shared")
        assert full.assignment["comm_ab"] == "noc"
        assert full.assignment["comm_ba"] == "noc"

    def test_unknown_interconnect(self):
        g = insert_communication(pipeline2(), split_mapping(), latency=4)
        with pytest.raises(ValidationError):
            communication_mapping(g, split_mapping(), "quantum")


class TestFullBinding:
    def test_latency_slows_the_loop(self):
        slow = throughput(
            bind_with_communication(pipeline2(), split_mapping(), latency=4)
        ).cycle_time
        fast = throughput(
            bind_with_communication(pipeline2(), split_mapping(), latency=0)
        ).cycle_time
        assert slow > fast

    def test_shared_interconnect_is_slower_or_equal(self):
        private = throughput(
            bind_with_communication(
                pipeline2(), split_mapping(), latency=4, interconnect="infinite"
            )
        ).cycle_time
        shared = throughput(
            bind_with_communication(
                pipeline2(), split_mapping(), latency=4, interconnect="shared"
            )
        ).cycle_time
        assert shared >= private

    def test_bound_graph_is_homogeneous_and_live(self):
        bound = bind_with_communication(figure3_graph(),
                                        Mapping(assignment={"L": "p0", "R": "p1"}),
                                        latency=2)
        assert bound.is_homogeneous()
        assert is_live(bound)

    def test_conservative_vs_ideal_interconnect(self):
        g = pipeline2()
        mapping = split_mapping()
        ideal = throughput(bind_with_communication(g, mapping, latency=0)).cycle_time
        real = throughput(bind_with_communication(g, mapping, latency=7)).cycle_time
        assert real >= ideal
