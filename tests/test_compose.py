"""Graph composition helpers."""

import pytest

from repro.analysis.throughput import throughput
from repro.errors import ValidationError
from repro.sdf.compose import disjoint_union, feedback, renamed, serial
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import is_consistent, repetition_vector
from repro.sdf.schedule import is_live


def block(name="blk", time=2):
    g = SDFGraph(name)
    g.add_actor("in", time)
    g.add_actor("out", time)
    g.add_edge("in", "in", tokens=1, name="self_in")
    g.add_edge("out", "out", tokens=1, name="self_out")
    g.add_edge("in", "out", name="mid")
    return g


class TestRenamed:
    def test_names_prefixed(self):
        r = renamed(block(), "x_")
        assert set(r.actor_names) == {"x_in", "x_out"}
        assert {e.name for e in r.edges} == {"x_self_in", "x_self_out", "x_mid"}

    def test_structure_preserved(self):
        g = block()
        r = renamed(g, "p_")
        assert r.actor_count() == g.actor_count()
        assert r.total_tokens() == g.total_tokens()
        assert r.execution_time("p_in") == 2

    def test_original_untouched(self):
        g = block()
        renamed(g, "y_")
        assert "in" in g.actor_names


class TestUnion:
    def test_components_independent(self):
        u = disjoint_union([block("a"), block("b")])
        assert u.actor_count() == 4
        assert len(u.undirected_components()) == 2

    def test_clashing_names_ok_with_prefix(self):
        u = disjoint_union([block(), block()])
        assert u.actor_count() == 4

    def test_clash_without_prefix_raises(self):
        with pytest.raises(ValidationError):
            disjoint_union([block(), block()], auto_prefix=False)

    def test_analysis_of_union(self):
        u = disjoint_union([block(), block(time=5)])
        result = throughput(u)
        # Guaranteed rate bound by the slowest component's loop.
        assert result.cycle_time == 5


class TestSerial:
    def test_basic_chain(self):
        s = serial(block("a"), block("b", time=3), connect=("out", "in"))
        assert s.has_actor("u_out") and s.has_actor("d_in")
        assert is_consistent(s) and is_live(s)
        assert any(e.name == "link" for e in s.edges)

    def test_multirate_link(self):
        s = serial(
            block("a"), block("b"), connect=("out", "in"), production=3, consumption=1
        )
        gamma = repetition_vector(s)
        assert gamma["d_in"] == 3 * gamma["u_out"]

    def test_unknown_actor_rejected(self):
        with pytest.raises(ValidationError):
            serial(block(), block(), connect=("ghost", "in"))

    def test_inconsistent_rates_rejected(self):
        # Conflicting second link via existing structure: make the
        # downstream internally rate-fixed, then force a mismatch.
        up = block("a")
        down = block("b")
        first = serial(up, down, connect=("out", "in"), production=2, consumption=1)
        with pytest.raises(ValidationError):
            feedback(first, "d_out", "u_in", production=1, consumption=3)


class TestFeedback:
    def test_closes_loop(self):
        s = serial(block("a"), block("b"), connect=("out", "in"))
        closed = feedback(s, "d_out", "u_in", tokens=2)
        assert closed.is_strongly_connected()
        assert is_live(closed)

    def test_throughput_of_closed_loop(self):
        s = serial(block("a"), block("b"), connect=("out", "in"))
        closed = feedback(s, "d_out", "u_in", tokens=1)
        # One token around the 4-actor loop: period = total work 8.
        assert throughput(closed).cycle_time == 8

    def test_original_untouched(self):
        s = serial(block("a"), block("b"), connect=("out", "in"))
        feedback(s, "d_out", "u_in")
        assert not s.is_strongly_connected()
