"""Unit tests for the max-plus scalar layer."""

import math
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.maxplus.algebra import (
    EPSILON,
    as_fraction,
    check_scalar,
    is_epsilon,
    mp_max,
    mp_plus,
    mp_sum,
    mp_times_int,
)

rationals = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.fractions(min_value=-1000, max_value=1000, max_denominator=50),
)
scalars = st.one_of(st.just(EPSILON), rationals)


class TestEpsilon:
    def test_epsilon_is_minus_infinity(self):
        assert EPSILON == float("-inf")
        assert is_epsilon(EPSILON)

    def test_finite_values_are_not_epsilon(self):
        assert not is_epsilon(0)
        assert not is_epsilon(-10**9)
        assert not is_epsilon(Fraction(-1, 3))

    def test_epsilon_absorbs_multiplication(self):
        assert mp_plus(EPSILON, 5) == EPSILON
        assert mp_plus(5, EPSILON) == EPSILON
        assert mp_plus(EPSILON, EPSILON) == EPSILON

    def test_epsilon_is_additive_identity(self):
        assert mp_max(EPSILON, 5) == 5
        assert mp_max(EPSILON, Fraction(-7, 2)) == Fraction(-7, 2)
        assert mp_max() == EPSILON
        assert mp_sum([]) == EPSILON


class TestScalarOps:
    def test_mp_plus_is_addition(self):
        assert mp_plus(2, 3) == 5
        assert mp_plus(Fraction(1, 2), Fraction(1, 3)) == Fraction(5, 6)

    def test_mp_max_many(self):
        assert mp_max(1, 5, 3) == 5
        assert mp_max(EPSILON, EPSILON, -2) == -2

    def test_mp_times_int(self):
        assert mp_times_int(3, 4) == 12
        assert mp_times_int(EPSILON, 2) == EPSILON

    def test_mp_times_int_zero_copies_is_semiring_one(self):
        # x ⊗ ... 0 times is the multiplicative identity 0.
        assert mp_times_int(EPSILON, 0) == 0
        assert mp_times_int(7, 0) == 0

    @given(a=scalars, b=scalars, c=scalars)
    def test_mp_plus_associative_commutative(self, a, b, c):
        assert mp_plus(a, b) == mp_plus(b, a)
        assert mp_plus(mp_plus(a, b), c) == mp_plus(a, mp_plus(b, c))

    @given(a=scalars, b=scalars, c=scalars)
    def test_distributivity(self, a, b, c):
        # a ⊗ (b ⊕ c) = (a ⊗ b) ⊕ (a ⊗ c)
        assert mp_plus(a, mp_max(b, c)) == mp_max(mp_plus(a, b), mp_plus(a, c))


class TestValidation:
    def test_check_scalar_accepts_rationals(self):
        assert check_scalar(5) == 5
        assert check_scalar(Fraction(3, 7)) == Fraction(3, 7)
        assert check_scalar(EPSILON) == EPSILON

    def test_check_scalar_rejects_bool(self):
        with pytest.raises(TypeError):
            check_scalar(True)

    def test_check_scalar_rejects_finite_float(self):
        with pytest.raises(TypeError):
            check_scalar(1.5)

    def test_check_scalar_rejects_nan_and_plus_inf(self):
        with pytest.raises(ValueError):
            check_scalar(float("nan"))
        with pytest.raises(ValueError):
            check_scalar(float("inf"))

    def test_check_scalar_rejects_strings(self):
        with pytest.raises(TypeError):
            check_scalar("3")

    def test_as_fraction(self):
        assert as_fraction(3) == Fraction(3)
        assert as_fraction(EPSILON) == EPSILON
