"""Multi-iteration symbolic execution: the matrix-power law.

Executing k iterations symbolically must give exactly M^⊗k — the
property that lets the max-plus semantics compose, and a strong
whole-pipeline consistency check between the scheduler, the symbolic
engine and the matrix algebra.
"""

import random

import pytest

from repro.core.symbolic import symbolic_iteration
from repro.graphs.examples import figure3_graph, section41_example
from repro.graphs.random_sdf import random_consistent_sdf
from repro.sdf.repetition import repetition_vector
from repro.sdf.schedule import sequential_schedule


def multi_iteration_matrix(graph, k):
    gamma = repetition_vector(graph)
    schedule = sequential_schedule(
        graph, repetitions={a: k * v for a, v in gamma.items()}
    )
    return symbolic_iteration(graph, schedule=schedule).matrix


class TestMatrixPowerLaw:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_figure3(self, k):
        g = figure3_graph()
        single = symbolic_iteration(g).matrix
        assert multi_iteration_matrix(g, k) == single.power(k)

    @pytest.mark.parametrize("k", [2, 4])
    def test_section41(self, k):
        g = section41_example()
        single = symbolic_iteration(g).matrix
        assert multi_iteration_matrix(g, k) == single.power(k)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        g = random_consistent_sdf(rng, n_actors=4, extra_edges=2, max_repetition=3)
        k = rng.randint(2, 4)
        single = symbolic_iteration(g).matrix
        assert multi_iteration_matrix(g, k) == single.power(k)

    def test_double_iteration_firing_counts(self):
        g = figure3_graph()
        gamma = repetition_vector(g)
        schedule = sequential_schedule(
            g, repetitions={a: 2 * v for a, v in gamma.items()}
        )
        iteration = symbolic_iteration(g, schedule=schedule)
        assert max(i for (a, i) in iteration.firing_completions if a == "L") == 3
        assert max(i for (a, i) in iteration.firing_completions if a == "R") == 1
