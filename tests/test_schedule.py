"""Sequential schedules and liveness."""

import pytest

from conftest import replay_schedule
from repro.errors import DeadlockError
from repro.graphs import TABLE1_CASES
from repro.graphs.examples import figure3_graph, section41_example
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector
from repro.sdf.schedule import is_live, sequential_schedule


class TestScheduleConstruction:
    def test_ring_schedule(self, simple_ring):
        schedule = sequential_schedule(simple_ring)
        assert schedule == ["Z", "X", "Y"] or replay_schedule(simple_ring, schedule)

    def test_schedule_is_admissible_iteration(self, two_actor_multirate):
        schedule = sequential_schedule(two_actor_multirate)
        assert replay_schedule(two_actor_multirate, schedule)

    def test_figure3_three_firings(self):
        schedule = sequential_schedule(figure3_graph())
        assert len(schedule) == 3
        assert schedule.count("L") == 2 and schedule.count("R") == 1

    def test_section41_schedule_length(self):
        g = section41_example()
        assert len(sequential_schedule(g)) == g.actor_count()

    @pytest.mark.parametrize("case", TABLE1_CASES, ids=lambda c: c.name)
    def test_benchmark_schedules_replay(self, case):
        g = case.build()
        assert replay_schedule(g, sequential_schedule(g))

    def test_multi_iteration_schedule(self, two_actor_multirate):
        gamma = repetition_vector(two_actor_multirate)
        double = {a: 2 * v for a, v in gamma.items()}
        schedule = sequential_schedule(two_actor_multirate, repetitions=double)
        assert len(schedule) == 2 * sum(gamma.values())

    def test_zero_repetitions_supported(self, simple_ring):
        zero = {a: 0 for a in simple_ring.actor_names}
        assert sequential_schedule(simple_ring, repetitions=zero) == []


class TestDeadlock:
    def test_tokenless_ring_deadlocks(self):
        g = SDFGraph("dead")
        g.add_actors("a", "b")
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        with pytest.raises(DeadlockError) as excinfo:
            sequential_schedule(g)
        assert excinfo.value.blocked == {"a": 1, "b": 1}
        assert not is_live(g)

    def test_partial_deadlock_reports_blocked_only(self):
        g = SDFGraph()
        g.add_actors("free", "a", "b")
        g.add_edge("free", "free", tokens=1)
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        with pytest.raises(DeadlockError) as excinfo:
            sequential_schedule(g)
        assert set(excinfo.value.blocked) == {"a", "b"}

    def test_insufficient_tokens_on_multirate_cycle(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b", production=1, consumption=2, tokens=1)
        g.add_edge("b", "a", production=2, consumption=1, tokens=0)
        assert not is_live(g)

    def test_enough_tokens_make_it_live(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b", production=1, consumption=2, tokens=2)
        g.add_edge("b", "a", production=2, consumption=1, tokens=0)
        assert is_live(g)

    @pytest.mark.parametrize("case", TABLE1_CASES, ids=lambda c: c.name)
    def test_all_benchmarks_live(self, case):
        assert is_live(case.build())

    def test_liveness_depends_on_token_placement(self):
        # Same ring, token moved: still live (any single token works).
        g = SDFGraph()
        g.add_actors("a", "b", "c")
        g.add_edge("a", "b", tokens=1)
        g.add_edge("b", "c")
        g.add_edge("c", "a")
        assert is_live(g)
