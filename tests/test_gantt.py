"""ASCII Gantt rendering."""

from fractions import Fraction

import pytest

from repro.graphs.examples import section41_example
from repro.sdf.gantt import gantt, render_gantt, simulate_trace
from repro.sdf.graph import SDFGraph
from repro.sdf.simulation import FiringRecord


def simple():
    g = SDFGraph()
    g.add_actor("a", 2)
    g.add_actor("b", 1)
    g.add_edge("a", "a", tokens=1, name="sa")
    g.add_edge("a", "b")
    g.add_edge("b", "b", tokens=1, name="sb")
    return g


class TestTrace:
    def test_horizon_respected(self):
        trace = simulate_trace(simple(), Fraction(6))
        assert all(r.end <= 6 for r in trace)
        assert any(r.actor == "b" for r in trace)

    def test_counts(self):
        trace = simulate_trace(simple(), Fraction(6))
        assert sum(1 for r in trace if r.actor == "a") == 3  # ends 2, 4, 6


class TestRender:
    def test_empty(self):
        assert render_gantt(simple(), []) == "(empty trace)"

    def test_lanes_per_actor(self):
        chart = gantt(simple(), 6, width=60)
        lines = chart.splitlines()
        assert lines[0].startswith("a ")
        assert any(line.startswith("b ") for line in lines)

    def test_blocks_drawn(self):
        chart = gantt(simple(), 6, width=60)
        assert "[" in chart and "]" in chart

    def test_auto_concurrency_stacks_lanes(self):
        g = SDFGraph()
        g.add_actor("x", 4)
        g.add_edge("x", "x", tokens=2, name="sx")  # two concurrent firings
        chart = gantt(g, 4, width=40)
        lanes = [l for l in chart.splitlines()[:-1]]
        assert len(lanes) == 2  # both lanes belong to x

    def test_width_cap(self):
        chart = gantt(section41_example(), 46, width=50)
        assert max(len(line) for line in chart.splitlines()) <= 70

    def test_fractional_times(self):
        g = SDFGraph()
        g.add_actor("f", Fraction(1, 2))
        g.add_edge("f", "f", tokens=1, name="sf")
        chart = gantt(g, Fraction(3, 2), width=30)
        assert "f" in chart

    def test_zero_length_firing_marker(self):
        trace = [FiringRecord("z", Fraction(1), Fraction(1))]
        g = SDFGraph()
        g.add_actor("z", 0)
        chart = render_gantt(g, trace, till=Fraction(2))
        assert "#" in chart or "[" in chart
