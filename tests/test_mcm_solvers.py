"""The MCM/MCR solver suite, cross-checked against the brute-force oracle."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.random_sdf import random_ratio_graph
from repro.mcm import (
    RatioGraph,
    ZeroTransitCycleError,
    brute_force_mcr,
    howard_mcr,
    karp_mcm,
    lawler_mcr,
    yto_mcm,
)
from repro.mcm.brute import simple_cycles


def ring(weights, transits):
    g = RatioGraph()
    n = len(weights)
    for i in range(n):
        g.add_edge(i, (i + 1) % n, weights[i], transits[i])
    return g


def unit_transit(graph: RatioGraph) -> RatioGraph:
    """Copy with every transit forced to 1 (for the MCM-only solvers)."""
    g = RatioGraph()
    for node in graph.nodes:
        g.add_node(node)
    for e in graph.edges:
        g.add_edge(e.source, e.target, e.weight, 1, e.key)
    return g


MCR_SOLVERS = [howard_mcr, lawler_mcr, brute_force_mcr]
MCM_SOLVERS = MCR_SOLVERS + [karp_mcm, yto_mcm]


class TestKnownInstances:
    @pytest.mark.parametrize("solver", MCM_SOLVERS)
    def test_single_self_loop(self, solver):
        g = RatioGraph()
        g.add_edge("a", "a", 7, 1)
        assert solver(g).value == 7

    @pytest.mark.parametrize("solver", MCM_SOLVERS)
    def test_two_rings_pick_max_mean(self, solver):
        g = RatioGraph()
        g.add_edge("a", "b", 3, 1)
        g.add_edge("b", "a", 5, 1)  # mean 4
        g.add_edge("c", "c", 6, 1)  # mean 6
        result = solver(g)
        assert result.value == 6
        if result.cycle is not None:
            assert result.cycle_nodes() == ["c"]

    @pytest.mark.parametrize("solver", MCR_SOLVERS)
    def test_transit_weighting(self, solver):
        # Same weights, different transits: ratio discriminates.
        g = RatioGraph()
        g.add_edge("a", "a", 10, 2)  # ratio 5
        g.add_edge("b", "b", 9, 1)  # ratio 9
        assert solver(g).value == 9

    @pytest.mark.parametrize("solver", MCM_SOLVERS)
    def test_acyclic_returns_none(self, solver):
        g = RatioGraph()
        g.add_edge("a", "b", 1, 1)
        g.add_edge("b", "c", 1, 1)
        assert solver(g).value is None

    @pytest.mark.parametrize("solver", MCM_SOLVERS)
    def test_fractional_weights(self, solver):
        g = ring([Fraction(1, 3), Fraction(1, 2)], [1, 1])
        assert solver(g).value == Fraction(5, 12)

    @pytest.mark.parametrize("solver", MCR_SOLVERS)
    def test_zero_transit_cycle_raises(self, solver):
        g = ring([1, 1], [0, 0])
        with pytest.raises(ZeroTransitCycleError):
            solver(g)

    @pytest.mark.parametrize("solver", MCR_SOLVERS)
    def test_parallel_edges(self, solver):
        g = RatioGraph()
        g.add_edge("a", "b", 1, 0)
        g.add_edge("a", "b", 6, 0)
        g.add_edge("b", "a", 1, 1)
        assert solver(g).value == 7

    @pytest.mark.parametrize("solver", MCR_SOLVERS)
    def test_mixed_transit_cycle(self, solver):
        # cycle a->b->a: weight 7, transit 3.
        g = RatioGraph()
        g.add_edge("a", "b", 3, 2)
        g.add_edge("b", "a", 4, 1)
        assert solver(g).value == Fraction(7, 3)

    @pytest.mark.parametrize("solver", MCM_SOLVERS)
    def test_negative_weights(self, solver):
        g = ring([-3, -1], [1, 1])
        assert solver(g).value == Fraction(-2)

    @pytest.mark.parametrize("solver", MCM_SOLVERS)
    def test_critical_cycle_is_consistent(self, solver):
        g = RatioGraph()
        g.add_edge("a", "b", 2, 1)
        g.add_edge("b", "a", 8, 1)
        g.add_edge("b", "c", 1, 1)
        g.add_edge("c", "b", 1, 1)
        result = solver(g)
        assert result.value == 5
        # .check() inside solvers already validates; double-check here.
        if result.cycle:
            w = sum(e.weight for e in result.cycle)
            t = sum(e.transit for e in result.cycle)
            assert Fraction(w, t) == result.value


class TestRandomisedAgainstOracle:
    @pytest.mark.parametrize("seed", range(30))
    def test_mcr_solvers_agree(self, seed):
        rng = random.Random(seed)
        g = random_ratio_graph(
            rng,
            n_nodes=rng.randint(2, 7),
            n_edges=rng.randint(2, 14),
            allow_negative=(seed % 3 == 0),
        )
        expected = brute_force_mcr(g).value
        assert howard_mcr(g).value == expected
        assert lawler_mcr(g).value == expected

    @pytest.mark.parametrize("seed", range(30))
    def test_mcm_solvers_agree(self, seed):
        rng = random.Random(1000 + seed)
        g = unit_transit(
            random_ratio_graph(
                rng,
                n_nodes=rng.randint(2, 7),
                n_edges=rng.randint(2, 14),
                allow_negative=(seed % 2 == 0),
            )
        )
        expected = brute_force_mcr(g).value
        assert karp_mcm(g).value == expected
        assert yto_mcm(g).value == expected
        assert howard_mcr(g).value == expected

    @pytest.mark.parametrize("seed", range(10))
    def test_larger_instances_cross_check(self, seed):
        rng = random.Random(7000 + seed)
        g = random_ratio_graph(rng, n_nodes=25, n_edges=80)
        assert howard_mcr(g).value == lawler_mcr(g).value


class TestPreconditions:
    def test_karp_rejects_nonunit_transit(self):
        g = ring([1, 1], [2, 1])
        with pytest.raises(ValueError):
            karp_mcm(g)

    def test_yto_rejects_nonunit_transit(self):
        g = ring([1, 1], [2, 1])
        with pytest.raises(ValueError):
            yto_mcm(g)

    def test_brute_force_budget(self):
        g = RatioGraph()
        for i in range(8):
            for j in range(8):
                if i != j:
                    g.add_edge(i, j, 1, 1)
        with pytest.raises(RuntimeError):
            brute_force_mcr(g, max_cycles=10)


class TestSimpleCycleEnumeration:
    def test_counts_on_complete_graph(self):
        g = RatioGraph()
        for i in range(3):
            for j in range(3):
                if i != j:
                    g.add_edge(i, j, 1, 1)
        # K3 directed: 3 two-cycles + 2 three-cycles.
        assert sum(1 for _ in simple_cycles(g)) == 5

    def test_multi_edge_cycles_distinct(self):
        g = RatioGraph()
        g.add_edge("a", "b", 1, 1)
        g.add_edge("a", "b", 2, 1)
        g.add_edge("b", "a", 1, 1)
        assert sum(1 for _ in simple_cycles(g)) == 2

    def test_self_loops_counted(self):
        g = RatioGraph()
        g.add_edge("a", "a", 1, 1)
        g.add_edge("a", "a", 2, 1)
        assert sum(1 for _ in simple_cycles(g)) == 2
