"""Run the doctest examples embedded in module docstrings.

Docstrings are documentation; examples in them must execute.
"""

import doctest

import pytest

import repro.analysis.cache
import repro.maxplus.algebra
import repro.maxplus.matrix
import repro.sdf.graph
import repro.sdf.simulation

MODULES = [
    repro.sdf.graph,
    repro.sdf.simulation,
    repro.maxplus.algebra,
    repro.maxplus.matrix,
    repro.analysis.cache,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0


def test_key_examples_present():
    # The flagship docstrings must actually contain runnable examples.
    for module in (repro.sdf.graph, repro.sdf.simulation):
        result = doctest.testmod(module, verbose=False)
        assert result.attempted > 0, module.__name__
