"""Proposition 1 dominance, the σ embedding, and Theorem 1 end to end."""

from fractions import Fraction

import pytest

from repro.analysis.throughput import throughput
from repro.core.abstraction import Abstraction, abstract_graph
from repro.core.conservativity import dominates, sigma_map, verify_abstraction
from repro.core.unfolding import unfold
from repro.graphs.examples import (
    figure2_abstraction,
    figure2_graph,
    section41_abstraction,
    section41_example,
)
from repro.graphs.synthetic import (
    regular_prefetch,
    regular_prefetch_abstraction,
    remote_memory_abstraction,
    remote_memory_access,
)
from repro.sdf.graph import SDFGraph


class TestDominates:
    def test_graph_dominates_itself(self, simple_ring):
        assert dominates(simple_ring, simple_ring)

    def test_slower_graph_dominates(self, simple_ring):
        slower = simple_ring.copy()
        slower.set_execution_time("X", 99)
        assert dominates(slower, simple_ring)
        assert not dominates(simple_ring, slower)

    def test_fewer_tokens_dominates(self, simple_ring):
        stricter = simple_ring.copy()
        # The original has a token on Z→X; a token-free counterpart
        # would deadlock but still dominates syntactically... it cannot:
        # d' ≤ d must hold in the *conservative* graph, so removing a
        # token from it is allowed, adding one is not.
        extra = simple_ring.copy()
        for e in extra.edges:
            if e.tokens:
                extra.set_tokens(e.name, e.tokens + 1)
        assert not dominates(extra, simple_ring)
        assert dominates(simple_ring, extra)

    def test_missing_edge_breaks_dominance(self, simple_ring):
        pruned = simple_ring.copy()
        pruned.remove_edge(simple_ring.edges[0].name)
        ok, reasons = dominates(pruned, simple_ring, explain=True)
        assert not ok
        assert any("counterpart" in r for r in reasons)

    def test_extra_edges_keep_dominance(self, simple_ring):
        richer = simple_ring.copy()
        richer.add_edge("X", "Z", tokens=0)
        assert dominates(richer, simple_ring)

    def test_non_injective_map_rejected(self, simple_ring):
        target = SDFGraph()
        target.add_actor("all", 99)
        target.add_edge("all", "all", tokens=1)
        mapping = {a: "all" for a in simple_ring.actor_names}
        ok, reasons = dominates(target, simple_ring, mapping, explain=True)
        assert not ok
        assert any("injective" in r for r in reasons)

    def test_missing_image_reported(self, simple_ring):
        ok, reasons = dominates(simple_ring, simple_ring, {"X": "X"}, explain=True)
        assert not ok
        assert any("no image" in r for r in reasons)

    def test_rate_mismatch_breaks_dominance(self):
        a = SDFGraph()
        a.add_actors("x", "y")
        a.add_edge("x", "y", production=2, consumption=1, tokens=1)
        a.add_edge("y", "x", production=1, consumption=2, tokens=1)
        b = a.copy()
        b.remove_edge(b.edges[0].name)
        b.add_edge("x", "y", production=1, consumption=1, tokens=1)
        assert not dominates(b, a)


class TestSigma:
    def test_sigma_names(self):
        sigma = sigma_map(section41_abstraction())
        assert sigma["A1"] == "A@0"
        assert sigma["B4"] == "B@3"

    def test_unfolded_abstract_dominates_original(self):
        g = section41_example()
        ab = section41_abstraction()
        unfolded = unfold(abstract_graph(g, ab), ab.phase_count)
        assert dominates(unfolded, g, sigma_map(ab))


class TestTheorem1:
    def test_section41_certificate(self):
        cert = verify_abstraction(section41_example(), section41_abstraction())
        assert cert.dominance
        assert cert.original_cycle_time == 23
        assert cert.bound_cycle_time == 30  # 6 · 5, i.e. throughput 1/(5n)
        assert cert.conservative
        assert cert.relative_error == Fraction(7, 23)

    @pytest.mark.parametrize("n", [5, 6, 8, 12, 20])
    def test_prefetch_family(self, n):
        # n >= 5 so the middle actors (time 5) exist and dominate T'(A);
        # at n = 4 the abstract graph is bounded by the B-chain instead.
        cert = verify_abstraction(
            regular_prefetch(n), regular_prefetch_abstraction(n)
        )
        assert cert.original_cycle_time == 5 * n - 7
        assert cert.bound_cycle_time == 5 * n
        # The relative error 7/(5n−7) vanishes as n grows (Section 4.1).
        assert cert.relative_error == Fraction(7, 5 * n - 7)

    def test_error_decreases_with_n(self):
        errors = [
            verify_abstraction(
                regular_prefetch(n), regular_prefetch_abstraction(n)
            ).relative_error
            for n in (5, 6, 10, 16)
        ]
        assert errors == sorted(errors, reverse=True)

    def test_figure2(self):
        cert = verify_abstraction(figure2_graph(), figure2_abstraction())
        assert cert.dominance and cert.conservative

    @pytest.mark.parametrize("n", [5, 8, 16])
    def test_remote_memory_is_exact(self, n):
        cert = verify_abstraction(
            remote_memory_access(n), remote_memory_abstraction(n)
        )
        assert cert.conservative
        assert cert.relative_error == 0  # "exactly the same throughput"

    def test_remote_memory_exact_even_when_network_bound(self):
        # With communication as the bottleneck the critical cycle chains
        # the prefetch hops around the whole ring; the graph is perfectly
        # regular, so the abstraction is *still* throughput-exact.
        cert = verify_abstraction(
            remote_memory_access(8, compute_time=10, ca_time=40),
            remote_memory_abstraction(8),
        )
        assert cert.conservative
        assert cert.relative_error == 0

    def test_prefetch_bound_strict_but_conservative(self):
        # The prefetch family is *almost* regular (the B chain is open),
        # so the bound is conservative yet not tight: error 7/(5n−7).
        cert = verify_abstraction(
            regular_prefetch(8), regular_prefetch_abstraction(8)
        )
        assert cert.conservative
        assert cert.relative_error > 0

    def test_deadlocked_abstraction_is_vacuously_conservative(self):
        # A valid abstraction whose abstract graph deadlocks: grouping
        # two actors whose connecting token sits "between phases".
        g = SDFGraph()
        g.add_actors("a", "b", "c")
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("c", "a", tokens=1)
        ab = Abstraction(
            mapping={"a": "G", "b": "H", "c": "G"},
            index={"a": 0, "b": 1, "c": 2},
        )
        ab.validate(g)
        cert = verify_abstraction(g, ab)
        if cert.abstract_deadlocked:
            assert cert.conservative
            assert cert.relative_error is None
        else:  # the grouping happened to stay live: still conservative
            assert cert.conservative

    def test_without_throughput_check(self):
        cert = verify_abstraction(
            section41_example(), section41_abstraction(), check_throughput=False
        )
        assert cert.conservative is None
        assert cert.original_cycle_time is None
