"""The abstraction transformation (Definitions 3 and 4)."""

import pytest

from repro.errors import NotAbstractableError
from repro.graphs.examples import (
    figure2_abstraction,
    figure2_graph,
    section41_abstraction,
    section41_example,
)
from repro.core.abstraction import Abstraction, abstract_graph, identity_abstraction
from repro.sdf.graph import SDFGraph


class TestValidation:
    def test_section41_abstraction_is_valid(self):
        section41_abstraction().validate(section41_example())

    def test_coverage_required(self):
        g = section41_example()
        ab = Abstraction(mapping={"A1": "A"}, index={"A1": 0})
        with pytest.raises(NotAbstractableError, match="cover"):
            ab.validate(g)

    def test_extraneous_actors_rejected(self, simple_ring):
        ab = Abstraction(
            mapping={"X": "G", "Y": "G", "Z": "G", "ghost": "G"},
            index={"X": 0, "Y": 1, "Z": 2, "ghost": 3},
        )
        with pytest.raises(NotAbstractableError, match="cover"):
            ab.validate(simple_ring)

    def test_duplicate_index_in_group_rejected(self, simple_ring):
        ab = Abstraction(
            mapping={"X": "G", "Y": "G", "Z": "G"},
            index={"X": 0, "Y": 0, "Z": 1},
        )
        with pytest.raises(NotAbstractableError, match="injective"):
            ab.validate(simple_ring)

    def test_negative_index_rejected(self, simple_ring):
        ab = Abstraction(
            mapping={"X": "G", "Y": "G", "Z": "G"},
            index={"X": -1, "Y": 0, "Z": 1},
        )
        with pytest.raises(NotAbstractableError, match="non-negative"):
            ab.validate(simple_ring)

    def test_mixed_repetition_entries_rejected(self, two_actor_multirate):
        ab = Abstraction(
            mapping={"A": "G", "B": "G"}, index={"A": 0, "B": 1}
        )
        with pytest.raises(NotAbstractableError, match="repetition"):
            ab.validate(two_actor_multirate)

    def test_backward_zero_delay_edge_rejected(self, simple_ring):
        # X→Y zero-delay but indices reversed.
        ab = Abstraction(
            mapping={"X": "G", "Y": "G", "Z": "H"},
            index={"X": 1, "Y": 0, "Z": 0},
        )
        with pytest.raises(NotAbstractableError, match="backward"):
            ab.validate(simple_ring)

    def test_backward_edge_with_delay_accepted(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b", tokens=1)
        g.add_edge("b", "a", tokens=1)
        ab = Abstraction(mapping={"a": "G", "b": "G"}, index={"a": 1, "b": 0})
        ab.validate(g)  # d > 0 allows I(a) > I(b)


class TestHelpers:
    def test_groups_ordered_by_phase(self):
        ab = section41_abstraction()
        groups = ab.groups()
        assert groups["A"] == [f"A{i}" for i in range(1, 7)]
        assert groups["B"] == [f"B{i}" for i in range(1, 5)]

    def test_phase_count(self):
        assert section41_abstraction().phase_count == 6
        assert figure2_abstraction().phase_count == 3

    def test_image(self):
        assert section41_abstraction().image("B3") == ("B", 2)

    def test_empty_abstraction_phase_count(self):
        assert Abstraction(mapping={}, index={}).phase_count == 0


class TestConstruction:
    def test_section41_abstract_graph_matches_figure1b(self):
        g = section41_example()
        abstract = abstract_graph(g, section41_abstraction())
        from repro.core.pruning import prune_redundant_edges

        pruned = prune_redundant_edges(abstract)
        expected = SDFGraph("figure1b")
        expected.add_actor("A", 5)  # slowest Ai
        expected.add_actor("B", 4)
        expected.add_edge("A", "A", tokens=1)
        expected.add_edge("B", "B", tokens=1)
        expected.add_edge("A", "B", tokens=0)
        expected.add_edge("B", "A", tokens=2)
        assert pruned.structurally_equal(expected)

    def test_execution_time_is_group_max(self):
        g = section41_example()
        abstract = abstract_graph(g, section41_abstraction())
        assert abstract.execution_time("A") == 5
        assert abstract.execution_time("B") == 4

    def test_delay_formula(self):
        g = figure2_graph()
        abstract = abstract_graph(g, figure2_abstraction())
        self_edges = sorted(
            e.tokens for e in abstract.edges if e.source == "A" and e.target == "A"
        )
        # Ring forward edges: 1 − 0 + 0 = 1 (twice); ring back edge:
        # 0 − 2 + 3·1 = 1; per-actor self-loops: 0 + 3·1 = 3 (thrice).
        assert self_edges == [1, 1, 1, 3, 3, 3]

    def test_identity_abstraction_is_lossless(self, simple_ring):
        abstract = abstract_graph(simple_ring, identity_abstraction(simple_ring))
        assert abstract.structurally_equal(simple_ring)

    def test_multirate_guard(self, two_actor_multirate):
        ab = Abstraction(
            mapping={"A": "A", "B": "B"}, index={"A": 0, "B": 0}
        )
        with pytest.raises(NotAbstractableError, match="homogeneous"):
            abstract_graph(two_actor_multirate, ab)

    def test_multirate_opt_in(self, two_actor_multirate):
        ab = Abstraction(mapping={"A": "A", "B": "B"}, index={"A": 0, "B": 0})
        abstract = abstract_graph(two_actor_multirate, ab, allow_multirate=True)
        assert abstract.structurally_equal(two_actor_multirate)

    def test_actor_count_reduction(self):
        g = section41_example()
        abstract = abstract_graph(g, section41_abstraction())
        assert abstract.actor_count() == 2
        assert g.actor_count() == 10

    def test_every_original_edge_becomes_an_edge(self):
        g = section41_example()
        abstract = abstract_graph(g, section41_abstraction())
        assert abstract.edge_count() == g.edge_count()
