"""The user-facing throughput analysis and its three back-ends."""

import random
from fractions import Fraction

import pytest

from repro.analysis.throughput import ThroughputResult, hsdf_cycle_ratio_graph, throughput
from repro.errors import (
    DeadlockError,
    InconsistentGraphError,
    UnboundedThroughputError,
    ValidationError,
)
from repro.graphs import TABLE1_CASES
from repro.graphs.examples import figure3_graph, section41_example
from repro.graphs.random_sdf import random_consistent_sdf, random_live_hsdf
from repro.graphs.synthetic import homogeneous_pipeline
from repro.sdf.graph import SDFGraph

METHODS = ("symbolic", "simulation", "hsdf")


class TestMethodsAgree:
    @pytest.mark.parametrize("method", METHODS)
    def test_section41(self, method):
        result = throughput(section41_example(), method=method)
        assert result.cycle_time == 23
        assert result.of("A1") == Fraction(1, 23)

    @pytest.mark.parametrize("method", METHODS)
    def test_figure3(self, method):
        result = throughput(figure3_graph(), method=method)
        assert result.cycle_time == 7
        assert result.of("L") == Fraction(2, 7)
        assert result.of("R") == Fraction(1, 7)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_sdf_all_methods(self, seed):
        rng = random.Random(seed)
        g = random_consistent_sdf(rng, n_actors=4, extra_edges=2, max_repetition=3)
        values = {m: throughput(g, method=m).cycle_time for m in METHODS}
        assert len(set(values.values())) == 1, values

    @pytest.mark.parametrize("seed", range(8))
    def test_random_hsdf_all_methods(self, seed):
        rng = random.Random(100 + seed)
        g = random_live_hsdf(rng, n_actors=5, extra_edges=4, max_time=6)
        values = {m: throughput(g, method=m).cycle_time for m in METHODS}
        assert len(set(values.values())) == 1, values

    @pytest.mark.parametrize("case", TABLE1_CASES, ids=lambda c: c.name)
    def test_benchmarks_symbolic_equals_simulation_where_feasible(self, case):
        if case.paper_traditional > 700:
            pytest.skip("state space too large for the explicit simulator")
        g = case.build()
        if not g.is_strongly_connected():
            pytest.skip("token build-up unbounded: no recurrent state to find")
        assert (
            throughput(g, method="symbolic").cycle_time
            == throughput(g, method="simulation").cycle_time
        )


class TestRates:
    def test_rates_scale_with_repetition(self, two_actor_multirate):
        result = throughput(two_actor_multirate)
        assert result.of("A") == 2 * result.of("B")

    def test_pipeline_closed_form(self):
        # λ = max(ΣT / tokens, max T, self-loop times).
        g = homogeneous_pipeline(4, execution_times=[2, 7, 3, 4], tokens=2)
        assert throughput(g).cycle_time == max(Fraction(16, 2), 7)

    def test_result_of_unknown_actor(self, simple_ring):
        with pytest.raises(KeyError):
            throughput(simple_ring).of("nope")

    def test_unknown_method_rejected(self, simple_ring):
        with pytest.raises(ValueError):
            throughput(simple_ring, method="magic")


class TestDegenerateCases:
    def test_deadlock_raises(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        with pytest.raises(DeadlockError):
            throughput(g)

    def test_inconsistent_raises(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b", production=2, consumption=1)
        g.add_edge("b", "a", production=1, consumption=1)
        with pytest.raises(InconsistentGraphError):
            throughput(g)

    def test_source_actor_raises_symbolic(self):
        g = SDFGraph()
        g.add_actors("src", "dst")
        g.add_edge("src", "dst")
        g.add_edge("dst", "dst", tokens=1)
        with pytest.raises(UnboundedThroughputError):
            throughput(g, method="symbolic")

    def test_unbounded_result_guards_rates(self):
        result = ThroughputResult(cycle_time=None, repetition={"a": 1}, method="x")
        assert result.unbounded
        with pytest.raises(ValidationError):
            result.per_actor

    def test_zero_time_cycle_reports_unbounded(self):
        g = SDFGraph()
        g.add_actor("a", 0)
        g.add_edge("a", "a", tokens=1)
        result = throughput(g, method="symbolic")
        assert result.unbounded


class TestGuaranteedVersusMeasured:
    def test_non_strongly_connected_guarantee_is_conservative(self):
        # Fast upstream ring feeding a slow downstream ring: the global
        # guarantee is the slow cycle; simulation of the *upstream* actor
        # alone would exceed it.  The guaranteed rate must lower-bound
        # the measured rate of every actor.
        g = SDFGraph()
        g.add_actor("fast", 1)
        g.add_actor("slow", 10)
        g.add_edge("fast", "fast", tokens=1)
        g.add_edge("slow", "slow", tokens=1)
        g.add_edge("fast", "slow")
        guaranteed = throughput(g, method="symbolic")
        assert guaranteed.cycle_time == 10
        from repro.sdf.simulation import SelfTimedSimulation

        sim = SelfTimedSimulation(g)
        sim.run_until(Fraction(100))
        for actor in g.actor_names:
            measured_rate = Fraction(sim.firings[actor], 100)
            assert measured_rate >= guaranteed.per_actor[actor] * Fraction(9, 10)


class TestCycleRatioView:
    def test_edge_weights_are_source_times(self, simple_ring):
        ratio = hsdf_cycle_ratio_graph(simple_ring)
        weights = {(e.source, e.target): e.weight for e in ratio.edges}
        assert weights[("X", "Y")] == 2
        assert weights[("Z", "X")] == 4

    def test_rejects_multirate(self, two_actor_multirate):
        with pytest.raises(ValidationError):
            hsdf_cycle_ratio_graph(two_actor_multirate)


class TestErrorVocabulary:
    def test_hsdf_method_reports_deadlock_not_zero_transit(self):
        # All back-ends speak the same error language.
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        for method in ("symbolic", "simulation", "hsdf"):
            with pytest.raises(DeadlockError):
                throughput(g, method=method)
