"""Rate-optimal static periodic schedules (reference [10] territory)."""

from fractions import Fraction

import pytest

from repro.analysis.periodic_schedule import (
    PeriodicSchedule,
    rate_optimal_schedule,
    verify_periodic_schedule,
)
from repro.analysis.throughput import throughput
from repro.errors import ValidationError
from repro.graphs.examples import figure3_graph, section41_example
from repro.graphs.synthetic import homogeneous_pipeline


class TestConstruction:
    @pytest.mark.parametrize(
        "factory", [figure3_graph, section41_example], ids=["fig3", "fig1"]
    )
    def test_period_is_exact_cycle_time(self, factory):
        g = factory()
        schedule = rate_optimal_schedule(g)
        assert schedule.period == throughput(g).cycle_time

    def test_offsets_cover_every_firing(self):
        g = figure3_graph()
        schedule = rate_optimal_schedule(g)
        assert set(schedule.offsets) == {("L", 0), ("L", 1), ("R", 0)}

    def test_normalised_starts_at_zero(self):
        schedule = rate_optimal_schedule(section41_example())
        assert min(schedule.offsets.values()) == 0

    def test_start_time_arithmetic(self):
        schedule = PeriodicSchedule(
            period=Fraction(10), offsets={("a", 0): Fraction(3)}
        )
        assert schedule.start_time("a", 0, 0) == 3
        assert schedule.start_time("a", 0, 5) == 53

    def test_actor_offsets_ordered_by_firing(self):
        g = figure3_graph()
        schedule = rate_optimal_schedule(g)
        first, second = schedule.actor_offsets("L")
        assert first <= second

    def test_self_loop_firings_do_not_overlap(self):
        # L's self-loop serialises its firings: offsets at least T apart.
        g = figure3_graph()
        schedule = rate_optimal_schedule(g)
        first, second = schedule.actor_offsets("L")
        assert second - first >= g.execution_time("L")

    def test_pipeline_schedule(self):
        g = homogeneous_pipeline(3, execution_times=[2, 4, 2], tokens=2)
        schedule = rate_optimal_schedule(g)
        assert schedule.period == throughput(g).cycle_time


class TestVerification:
    def test_valid_schedule_passes(self):
        g = section41_example()
        verify_periodic_schedule(g, rate_optimal_schedule(g))

    def test_compressed_schedule_rejected(self):
        # Halving the period of a maximal-throughput schedule must
        # underflow some channel.
        g = figure3_graph()
        schedule = rate_optimal_schedule(g)
        too_fast = PeriodicSchedule(
            period=schedule.period / 2, offsets=dict(schedule.offsets)
        )
        with pytest.raises(ValidationError, match="underflow"):
            verify_periodic_schedule(g, too_fast)

    def test_reordered_offsets_rejected(self):
        # Swapping a producer behind its consumer breaks admissibility.
        g = figure3_graph()
        schedule = rate_optimal_schedule(g)
        offsets = dict(schedule.offsets)
        offsets[("L", 0)], offsets[("R", 0)] = (
            offsets[("R", 0)] + 100,
            offsets[("L", 0)],
        )
        broken = PeriodicSchedule(period=schedule.period, offsets=offsets)
        with pytest.raises(ValidationError):
            verify_periodic_schedule(g, broken)

    def test_slower_schedule_still_valid(self):
        # Any period above the optimum with the same offsets stays
        # admissible (more slack between iterations).
        g = figure3_graph()
        schedule = rate_optimal_schedule(g)
        relaxed = PeriodicSchedule(
            period=schedule.period + 5, offsets=dict(schedule.offsets)
        )
        verify_periodic_schedule(g, relaxed)


class TestNonStronglyConnected:
    def test_pipeline_without_feedback_gets_a_schedule(self):
        # Token influence flows one way (no global eigenvector); the
        # sub-eigenvector construction must still deliver an admissible
        # schedule at the exact period.
        from repro.graphs.dsp import sample_rate_converter

        g = sample_rate_converter()
        schedule = rate_optimal_schedule(g)
        assert schedule.period == throughput(g).cycle_time
        verify_periodic_schedule(g, schedule)

    def test_two_speed_chain(self):
        from repro.sdf.graph import SDFGraph

        g = SDFGraph()
        g.add_actor("fast", 1)
        g.add_actor("slow", 10)
        g.add_edge("fast", "fast", tokens=1)
        g.add_edge("slow", "slow", tokens=1)
        g.add_edge("fast", "slow")
        schedule = rate_optimal_schedule(g)
        assert schedule.period == 10
        verify_periodic_schedule(g, schedule)
