"""Property suite: back-end agreement and cache coherence.

Two families of properties over hypothesis-generated graphs:

* the three throughput back-ends (``symbolic``, ``simulation``,
  ``hsdf``) compute the same iteration period on arbitrary consistent
  live graphs — the reproduction's central cross-check, here quantified
  over 200+ random graphs;
* everything served from an :class:`AnalysisCache` is *identical* to a
  cold computation, including for structurally equal graphs built in a
  different insertion order (content addressing must not change any
  analysis outcome).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from strategies import consistent_connected_sdf_graphs, shuffled_clones

from repro.analysis.cache import AnalysisCache
from repro.analysis.latency import latency
from repro.analysis.throughput import throughput
from repro.sdf.repetition import repetition_vector

thorough = settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

quick = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestBackendAgreement:
    @given(g=consistent_connected_sdf_graphs(max_actors=4, max_repetition=3,
                                             min_time=1, max_extra_tokens=2))
    @thorough
    def test_all_three_backends_agree(self, g):
        symbolic = throughput(g, method="symbolic")
        simulation = throughput(g, method="simulation")
        hsdf = throughput(g, method="hsdf")
        assert symbolic.cycle_time == simulation.cycle_time == hsdf.cycle_time
        assert symbolic.repetition == simulation.repetition == hsdf.repetition

    @given(g=consistent_connected_sdf_graphs(max_actors=5, max_repetition=4,
                                             min_time=1, max_extra_edges=4))
    @quick
    def test_per_actor_rates_agree(self, g):
        symbolic = throughput(g, method="symbolic")
        hsdf = throughput(g, method="hsdf")
        assert symbolic.per_actor == hsdf.per_actor


class TestCacheCoherence:
    @given(g=consistent_connected_sdf_graphs(max_actors=4, max_repetition=3))
    @quick
    def test_cached_equals_cold(self, g):
        cache = AnalysisCache(maxsize=64)
        cold = throughput(g)
        warm = cache.throughput(g)
        again = cache.throughput(g)
        assert warm.cycle_time == cold.cycle_time
        assert warm.repetition == cold.repetition
        if not cold.unbounded:
            assert warm.per_actor == cold.per_actor
        assert again is warm  # second lookup is the memoized object
        assert cache.repetition_vector(g) == repetition_vector(g)
        assert cache.latency(g).makespan == latency(g).makespan
        assert cache.latency(g).first_completion == latency(g).first_completion

    @given(g=consistent_connected_sdf_graphs(max_actors=4, max_repetition=3),
           data=st.data())
    @quick
    def test_shuffled_clone_shares_entries(self, g, data):
        """A clone built in another insertion order has the same
        fingerprint, hits the same cache entry, and the shared result
        equals the clone's own cold result."""
        clone = data.draw(shuffled_clones(g))
        assert clone.fingerprint() == g.fingerprint()
        cache = AnalysisCache(maxsize=64)
        warm = cache.throughput(g)
        shared = cache.throughput(clone)
        assert shared is warm
        assert cache.stats().misses == 1 and cache.stats().hits == 1
        cold_clone = throughput(clone)
        assert shared.cycle_time == cold_clone.cycle_time
        assert shared.repetition == cold_clone.repetition

    @given(g=consistent_connected_sdf_graphs(max_actors=4, max_repetition=3))
    @quick
    def test_all_backends_share_no_entries(self, g):
        """Different methods are distinct cache keys, never conflated."""
        cache = AnalysisCache(maxsize=64)
        symbolic = cache.throughput(g, method="symbolic")
        hsdf = cache.throughput(g, method="hsdf")
        assert cache.stats().misses == 2
        assert symbolic.cycle_time == hsdf.cycle_time
