"""The parallel batch runner: equivalence, error isolation, hit rates."""

from __future__ import annotations

import pytest

from repro.analysis.batch import ANALYSES, BatchReport, analyse_graph, run_batch
from repro.analysis.cache import AnalysisCache
from repro.analysis.latency import latency
from repro.analysis.throughput import throughput
from repro.graphs import TABLE1_CASES
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector


@pytest.fixture(scope="module")
def registry_graphs():
    return [case.build() for case in TABLE1_CASES]


def inconsistent_graph() -> SDFGraph:
    g = SDFGraph("broken-rates")
    g.add_actor("A", 1)
    g.add_actor("B", 1)
    g.add_edge("A", "B", production=2, consumption=3, name="fwd")
    g.add_edge("B", "A", production=1, consumption=1, tokens=1, name="back")
    return g


def deadlocked_graph() -> SDFGraph:
    g = SDFGraph("deadlocked")
    g.add_actor("A", 1)
    g.add_actor("B", 1)
    g.add_edge("A", "B")
    g.add_edge("B", "A")  # token-free cycle
    return g


class TestEquivalence:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_matches_sequential_loop(self, registry_graphs, backend):
        graphs = registry_graphs[:4] if backend == "process" else registry_graphs
        expected = {
            g.name: (repetition_vector(g), throughput(g).cycle_time) for g in graphs
        }
        report = run_batch(
            graphs,
            analyses=("repetition", "throughput"),
            backend=backend,
            workers=4,
            cache=AnalysisCache(),
        )
        assert len(report.results) == len(graphs)
        assert not report.failures
        for g, result in zip(graphs, report.results):
            assert result.name == g.name  # input order preserved
            gamma, cycle = expected[g.name]
            assert result.values["repetition"] == gamma
            assert result.values["throughput"].cycle_time == cycle

    def test_latency_analysis(self, registry_graphs):
        g = registry_graphs[2]  # modem: small enough for a direct check
        report = run_batch([g], analyses=("latency",), backend="serial")
        assert report.results[0].values["latency"].makespan == latency(g).makespan

    def test_analyse_graph_single(self, registry_graphs):
        result = analyse_graph(registry_graphs[2], analyses=("throughput",))
        assert result.ok
        assert result.fingerprint == registry_graphs[2].fingerprint()
        assert result.value("throughput").cycle_time == throughput(
            registry_graphs[2]
        ).cycle_time


class TestErrorIsolation:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_failures_do_not_kill_the_pool(self, backend):
        good = [case.build() for case in TABLE1_CASES[2:4]]
        graphs = [good[0], inconsistent_graph(), deadlocked_graph(), good[1]]
        report = run_batch(graphs, backend=backend, workers=2, cache=AnalysisCache())
        assert [r.ok for r in report.results] == [True, False, False, True]
        by_name = {r.name: r for r in report.results}
        assert by_name["broken-rates"].error_type == "InconsistentGraphError"
        assert by_name["deadlocked"].error_type == "DeadlockError"
        assert "inconsistent" in by_name["broken-rates"].error
        assert len(report.ok) == 2 and len(report.failures) == 2
        for g, result in zip(good, (report.results[0], report.results[3])):
            assert result.values["throughput"].cycle_time == throughput(g).cycle_time

    def test_failed_result_value_raises(self):
        report = run_batch([inconsistent_graph()], backend="serial")
        with pytest.raises(RuntimeError, match="failed"):
            report.results[0].value("throughput")

    def test_unknown_backend(self, registry_graphs):
        with pytest.raises(ValueError, match="unknown backend"):
            run_batch(registry_graphs[:1], backend="fibers")

    def test_unknown_analysis(self, registry_graphs):
        with pytest.raises(ValueError, match="unknown analyses"):
            run_batch(registry_graphs[:1], analyses=("vibes",))

    def test_bad_workers(self, registry_graphs):
        with pytest.raises(ValueError, match="workers"):
            run_batch(registry_graphs[:1], workers=0)


class TestCacheIntegration:
    def test_hit_rate_reported(self, registry_graphs):
        cache = AnalysisCache()
        cold = run_batch(registry_graphs, cache=cache)
        assert cold.cache_stats.hits == 0
        assert cold.cache_stats.misses == len(registry_graphs)
        warm = run_batch(registry_graphs, cache=cache)
        assert warm.cache_stats.hits == len(registry_graphs)
        assert warm.cache_stats.misses == len(registry_graphs)  # unchanged
        assert warm.hit_rate == 0.5
        assert warm.duration < cold.duration

    def test_duplicate_variants_deduped(self, registry_graphs):
        """Scenario-suite shape: repeated identical variants compute once."""
        cache = AnalysisCache()
        g = registry_graphs[2]
        suite = [g.copy(f"variant-{i}") for i in range(6)]
        report = run_batch(suite, backend="thread", workers=4, cache=cache)
        assert not report.failures
        stats = report.cache_stats
        assert stats.misses == 1  # one distinct fingerprint
        assert stats.hits + stats.coalesced == 5
        cycles = {r.values["throughput"].cycle_time for r in report.results}
        assert cycles == {throughput(g).cycle_time}

    def test_process_backend_warms_local_cache(self):
        cache = AnalysisCache()
        graphs = [case.build() for case in TABLE1_CASES[2:4]]
        run_batch(graphs, backend="process", workers=2, cache=cache)
        assert len(cache) == len(graphs)  # results adopted locally
        warm = run_batch(graphs, backend="process", workers=2, cache=cache)
        assert warm.cache_stats.hits == len(graphs)

    def test_repr_mentions_outcome(self, registry_graphs):
        report = run_batch(registry_graphs[:2], backend="serial")
        assert isinstance(report, BatchReport)
        assert "2 ok" in repr(report)

    def test_all_analyses_known(self):
        assert set(ANALYSES) == {
            "repetition",
            "throughput",
            "latency",
            "symbolic_iteration",
        }
