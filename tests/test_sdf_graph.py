"""The SDF graph data structure."""

from fractions import Fraction

import pytest

from repro.errors import ValidationError
from repro.sdf.graph import Actor, Edge, SDFGraph


class TestActorAndEdge:
    def test_actor_requires_name(self):
        with pytest.raises(ValidationError):
            Actor("")

    def test_actor_rejects_negative_time(self):
        with pytest.raises(ValidationError):
            Actor("a", -1)

    def test_actor_accepts_fraction_time(self):
        assert Actor("a", Fraction(1, 2)).execution_time == Fraction(1, 2)

    def test_actor_rejects_float_time(self):
        with pytest.raises(ValidationError):
            Actor("a", 0.5)

    def test_edge_rejects_zero_rates(self):
        with pytest.raises(ValidationError):
            Edge("e", "a", "b", production=0)
        with pytest.raises(ValidationError):
            Edge("e", "a", "b", consumption=0)

    def test_edge_rejects_negative_tokens(self):
        with pytest.raises(ValidationError):
            Edge("e", "a", "b", tokens=-1)

    def test_edge_rejects_bool_rates(self):
        with pytest.raises(ValidationError):
            Edge("e", "a", "b", production=True)

    def test_edge_flags(self):
        e = Edge("e", "a", "a", 1, 1, 2)
        assert e.is_self_loop
        assert e.is_homogeneous
        assert not Edge("f", "a", "b", 2, 1).is_homogeneous


class TestGraphBuilder:
    def test_duplicate_actor_rejected(self):
        g = SDFGraph()
        g.add_actor("a")
        with pytest.raises(ValidationError):
            g.add_actor("a")

    def test_edge_requires_existing_endpoints(self):
        g = SDFGraph()
        g.add_actor("a")
        with pytest.raises(ValidationError):
            g.add_edge("a", "ghost")

    def test_auto_edge_names_unique(self):
        g = SDFGraph()
        g.add_actor("a")
        e1 = g.add_edge("a", "a", tokens=1)
        e2 = g.add_edge("a", "a", tokens=2)
        assert e1.name != e2.name

    def test_duplicate_edge_name_rejected(self):
        g = SDFGraph()
        g.add_actor("a")
        g.add_edge("a", "a", tokens=1, name="x")
        with pytest.raises(ValidationError):
            g.add_edge("a", "a", tokens=1, name="x")

    def test_auto_names_skip_explicit_ones(self):
        g = SDFGraph()
        g.add_actor("a")
        g.add_edge("a", "a", tokens=1, name="e0")
        auto = g.add_edge("a", "a", tokens=1)
        assert auto.name != "e0"

    def test_set_execution_time(self):
        g = SDFGraph()
        g.add_actor("a", 1)
        g.set_execution_time("a", 9)
        assert g.execution_time("a") == 9

    def test_set_tokens(self):
        g = SDFGraph()
        g.add_actor("a")
        e = g.add_edge("a", "a", tokens=1)
        g.set_tokens(e.name, 5)
        assert g.edge(e.name).tokens == 5
        assert g.total_tokens() == 5

    def test_remove_edge(self):
        g = SDFGraph()
        g.add_actor("a")
        e = g.add_edge("a", "a", tokens=1)
        g.remove_edge(e.name)
        assert g.edge_count() == 0
        assert g.out_edges("a") == []
        with pytest.raises(ValidationError):
            g.remove_edge(e.name)

    def test_add_actors_bulk(self):
        g = SDFGraph()
        g.add_actors("a", "b", "c", execution_time=2)
        assert g.actor_count() == 3
        assert all(a.execution_time == 2 for a in g.actors)


class TestInspection:
    def test_adjacency(self, simple_ring):
        assert [e.target for e in simple_ring.out_edges("X")] == ["Y"]
        assert [e.source for e in simple_ring.in_edges("X")] == ["Z"]

    def test_execution_times_view(self, simple_ring):
        assert simple_ring.execution_times == {"X": 2, "Y": 3, "Z": 4}

    def test_homogeneity(self, simple_ring, two_actor_multirate):
        assert simple_ring.is_homogeneous()
        assert not two_actor_multirate.is_homogeneous()

    def test_total_tokens(self, two_actor_multirate):
        assert two_actor_multirate.total_tokens() == 2

    def test_stats_and_repr(self, simple_ring):
        assert simple_ring.stats() == {"actors": 3, "edges": 3, "tokens": 1}
        assert "ring" in repr(simple_ring)

    def test_unknown_actor_errors(self):
        g = SDFGraph()
        with pytest.raises(ValidationError):
            g.actor("nope")
        with pytest.raises(ValidationError):
            g.out_edges("nope")


class TestStructure:
    def test_connectivity(self, simple_ring):
        assert simple_ring.is_connected()
        assert simple_ring.is_strongly_connected()

    def test_disconnected_components(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        assert not g.is_connected()
        assert len(g.undirected_components()) == 2

    def test_weakly_but_not_strongly_connected(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b")
        assert g.is_connected()
        assert not g.is_strongly_connected()
        assert len(g.strongly_connected_components()) == 2

    def test_scc_multi_edge_graph(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b")
        g.add_edge("a", "b", tokens=1)
        g.add_edge("b", "a")
        assert g.is_strongly_connected()


class TestDerivation:
    def test_copy_is_deep_for_structure(self, simple_ring):
        clone = simple_ring.copy()
        clone.add_actor("W")
        clone.set_execution_time("X", 99)
        assert simple_ring.actor_count() == 3
        assert simple_ring.execution_time("X") == 2

    def test_copy_preserves_structure(self, two_actor_multirate):
        assert two_actor_multirate.copy().structurally_equal(two_actor_multirate)

    def test_with_self_loops(self, simple_ring):
        looped = simple_ring.with_self_loops()
        assert all(looped.has_self_loop(a) for a in looped.actor_names)
        assert looped.edge_count() == simple_ring.edge_count() + 3
        # Idempotent: actors that have loops don't get another.
        assert looped.with_self_loops().edge_count() == looped.edge_count()

    def test_structural_equality_ignores_edge_names(self):
        a = SDFGraph("a")
        a.add_actor("x")
        a.add_edge("x", "x", tokens=1, name="first")
        b = SDFGraph("b")
        b.add_actor("x")
        b.add_edge("x", "x", tokens=1, name="second")
        assert a.structurally_equal(b)

    def test_structural_inequality_on_tokens(self):
        a = SDFGraph()
        a.add_actor("x")
        a.add_edge("x", "x", tokens=1)
        b = SDFGraph()
        b.add_actor("x")
        b.add_edge("x", "x", tokens=2)
        assert not a.structurally_equal(b)

    def test_structural_inequality_on_times(self):
        a = SDFGraph()
        a.add_actor("x", 1)
        b = SDFGraph()
        b.add_actor("x", 2)
        assert not a.structurally_equal(b)
