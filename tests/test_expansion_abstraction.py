"""Composing the paper's two halves: abstracting the firing expansion."""

import random

import pytest

from repro.analysis.throughput import throughput
from repro.core.expansion_abstraction import (
    conservative_multirate_bound,
    expansion_abstraction,
)
from repro.graphs.examples import figure3_graph
from repro.graphs.random_sdf import random_consistent_sdf
from repro.sdf.repetition import repetition_vector
from repro.sdf.transform import traditional_hsdf


class TestExpansionAbstraction:
    def test_groups_are_original_actors(self, two_actor_multirate):
        ab = expansion_abstraction(two_actor_multirate)
        groups = ab.groups()
        assert set(groups) == {"A", "B"}
        assert len(groups["A"]) == 2 and len(groups["B"]) == 1

    def test_valid_on_figure3(self):
        g = figure3_graph()
        ab = expansion_abstraction(g)
        ab.validate(traditional_hsdf(g))

    def test_phase_count_at_least_max_gamma(self, two_actor_multirate):
        ab = expansion_abstraction(two_actor_multirate)
        gamma = repetition_vector(two_actor_multirate)
        assert ab.phase_count >= max(gamma.values())


class TestConservativeBound:
    def test_figure3_bound(self):
        g = figure3_graph()
        cert = conservative_multirate_bound(g)
        assert cert.conservative
        assert cert.original_cycle_time == throughput(g).cycle_time
        assert cert.bound_cycle_time >= cert.original_cycle_time
        # The abstract graph has one actor per original actor.
        assert cert.abstract.actor_count() == g.actor_count()

    def test_homogeneous_graph_is_tight(self, simple_ring):
        cert = conservative_multirate_bound(simple_ring)
        # γ ≡ 1: the expansion is the graph itself, N = 1, no dummies.
        assert cert.relative_error == 0

    @pytest.mark.parametrize("seed", range(8))
    def test_random_multirate_graphs(self, seed):
        rng = random.Random(seed)
        g = random_consistent_sdf(rng, n_actors=4, extra_edges=2, max_repetition=4)
        cert = conservative_multirate_bound(g, check_dominance=(seed % 2 == 0))
        assert cert.conservative
        if not cert.abstract_deadlocked:
            assert cert.bound_cycle_time >= throughput(g).cycle_time

    def test_benchmark_case(self):
        from repro.graphs.multimedia import mp3_decoder_granule_parallel

        g = mp3_decoder_granule_parallel()
        cert = conservative_multirate_bound(g)
        assert cert.conservative
        assert cert.abstract.actor_count() == g.actor_count()
