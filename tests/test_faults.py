"""Deterministic fault injection: selectors, actions, CLI spec parsing."""

from __future__ import annotations

import pickle

import pytest

from repro.analysis.deadline import Deadline
from repro.analysis.faults import (
    CRASH_SITES,
    CrashPoint,
    FaultInjected,
    FaultPlan,
    FaultRule,
    arm_crash_points,
    crash_point,
    disarm_crash_points,
    parse_crash_point,
    parse_fault,
)
from repro.errors import (
    AnalysisTimeout,
    TransientWorkerError,
    WorkerCrashed,
)


class TestFaultRule:
    def test_exactly_one_selector(self):
        with pytest.raises(ValueError):
            FaultRule(action="raise")
        with pytest.raises(ValueError):
            FaultRule(action="raise", name="g", probability=0.5)

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(action="explode", name="g")

    def test_unknown_exception_rejected_eagerly(self):
        with pytest.raises(ValueError):
            FaultRule(action="raise", name="g", exception="TotallyMadeUp")

    def test_name_selector(self):
        rule = FaultRule(action="raise", name="modem")
        assert rule.matches("modem", "fp", attempt=0, seed=0, index=0)
        assert not rule.matches("satellite", "fp", attempt=0, seed=0, index=0)

    def test_fingerprint_prefix_selector(self):
        rule = FaultRule(action="raise", fingerprint="sdfg-v1:ab")
        assert rule.matches("x", "sdfg-v1:abcd", attempt=0, seed=0, index=0)
        assert not rule.matches("x", "sdfg-v1:ffff", attempt=0, seed=0, index=0)

    def test_attempt_limit(self):
        rule = FaultRule(action="raise", name="g", attempts=2)
        assert rule.matches("g", "fp", attempt=0, seed=0, index=0)
        assert rule.matches("g", "fp", attempt=1, seed=0, index=0)
        assert not rule.matches("g", "fp", attempt=2, seed=0, index=0)

    def test_probability_is_deterministic_per_fingerprint(self):
        rule = FaultRule(action="raise", probability=0.5)
        draws = [
            rule.matches("g", f"fp-{i}", attempt=0, seed=42, index=0)
            for i in range(200)
        ]
        again = [
            rule.matches("g", f"fp-{i}", attempt=0, seed=42, index=0)
            for i in range(200)
        ]
        assert draws == again  # same seed, same verdicts
        assert 40 < sum(draws) < 160  # roughly the requested rate

    def test_probability_depends_on_seed(self):
        rule = FaultRule(action="raise", probability=0.5)
        a = [rule.matches("g", f"fp-{i}", 0, seed=1, index=0) for i in range(100)]
        b = [rule.matches("g", f"fp-{i}", 0, seed=2, index=0) for i in range(100)]
        assert a != b

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultRule(action="raise", probability=1.5)


class TestFaultPlan:
    def test_raise_default_exception(self):
        plan = FaultPlan((FaultRule(action="raise", name="g"),))
        with pytest.raises(FaultInjected, match="fp-full"):
            plan.fire("g", "fp-full-fingerprint")

    def test_raise_named_exception(self):
        plan = FaultPlan((FaultRule(
            action="raise", name="g", exception="TransientWorkerError"
        ),))
        with pytest.raises(TransientWorkerError):
            plan.fire("g", "fp")

    def test_no_match_is_a_noop(self):
        plan = FaultPlan((FaultRule(action="kill", name="other"),))
        plan.fire("g", "fp")  # nothing happens

    def test_delay_honours_deadline(self):
        plan = FaultPlan((FaultRule(action="delay", name="g", seconds=30.0),))
        with pytest.raises(AnalysisTimeout):
            plan.fire("g", "fp", deadline=Deadline.after(0.01))

    def test_hang_without_deadline_refuses(self):
        plan = FaultPlan((FaultRule(action="hang", name="g"),))
        with pytest.raises(FaultInjected, match="no deadline"):
            plan.fire("g", "fp")

    def test_kill_degrades_without_allow_kill(self):
        plan = FaultPlan((FaultRule(action="kill", name="g"),))
        with pytest.raises(WorkerCrashed) as exc:
            plan.fire("g", "fp", allow_kill=False)
        assert exc.value.fingerprint == "fp"

    def test_plan_pickles(self):
        plan = FaultPlan(
            (FaultRule(action="raise", probability=0.25, exception="ValueError"),),
            seed=9,
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert clone.matching("g", "fp", 0) == plan.matching("g", "fp", 0)

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan((FaultRule(action="kill", name="g"),))


class TestParseFault:
    def test_name_kill(self):
        rule = parse_fault("name=modem:kill")
        assert rule.action == "kill" and rule.name == "modem"

    def test_fingerprint_hang(self):
        rule = parse_fault("fp=sdfg-v1:ab:hang")
        assert rule.action == "hang" and rule.fingerprint == "sdfg-v1:ab"

    def test_delay_with_seconds(self):
        rule = parse_fault("name=g:delay:0.25")
        assert rule.action == "delay" and rule.seconds == 0.25

    def test_probability_raise_with_attempts(self):
        rule = parse_fault("p=0.25:raise:TransientWorkerError@1")
        assert rule.probability == 0.25
        assert rule.exception == "TransientWorkerError"
        assert rule.attempts == 1

    @pytest.mark.parametrize("bad", [
        "modem:kill",          # no selector kind
        "name=g",              # no action
        "name=g:delay",        # delay without seconds
        "name=g:kill:arg",     # kill takes no argument
        "name=g:frobnicate",   # unknown action
        "host=g:kill",         # unknown selector
        "name=g:kill@soon",    # non-integer attempts
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_fault(bad)


class TestCrashPoint:
    def teardown_method(self):
        disarm_crash_points()

    def test_parse_minimal(self):
        point = parse_crash_point("kill@store.publish")
        assert point == CrashPoint(action="kill", site="store.publish")
        assert point.hits == 1 and point.exception is None

    def test_parse_full_grammar(self):
        point = parse_crash_point("raise@store.read:MemoryError#3")
        assert point.action == "raise"
        assert point.site == "store.read"
        assert point.exception == "MemoryError"
        assert point.hits == 3

    @pytest.mark.parametrize("bad", [
        "store.publish",            # no action
        "detonate@store.publish",   # unknown action
        "kill@nowhere",             # unknown site
        "kill@store.publish#0",     # hits must be >= 1
        "kill@store.publish#two",   # non-integer hits
        "kill@store.publish:OSError",   # kill takes no exception
        "",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_crash_point(bad)

    def test_sites_are_closed_set(self):
        # The chaos suite iterates CRASH_SITES; every advertised site
        # must parse and every parse must name an advertised site.
        for site in CRASH_SITES:
            assert parse_crash_point(f"kill@{site}").site == site

    def test_unarmed_is_a_noop(self):
        disarm_crash_points()
        crash_point("store.publish")  # must not raise

    def test_raise_fires_on_exact_arrival(self):
        arm_crash_points(["raise@store.publish#2"])
        crash_point("store.publish")           # arrival 1: pass
        with pytest.raises(OSError):
            crash_point("store.publish")       # arrival 2: fire
        crash_point("store.publish")           # arrival 3: pass again

    def test_raise_custom_exception(self):
        arm_crash_points(["raise@store.read:MemoryError"])
        with pytest.raises(MemoryError):
            crash_point("store.read")

    def test_sites_are_independent(self):
        arm_crash_points(["raise@store.read"])
        crash_point("store.publish")  # different site: no fire
        with pytest.raises(OSError):
            crash_point("store.read")

    def test_arm_accepts_parsed_points(self):
        plan = arm_crash_points([CrashPoint(action="raise",
                                            site="store.evict")])
        assert plan == (CrashPoint(action="raise", site="store.evict"),)
        with pytest.raises(OSError):
            crash_point("store.evict")

    def test_disarm_resets_counts(self):
        arm_crash_points(["raise@store.read#2"])
        crash_point("store.read")
        arm_crash_points(["raise@store.read#2"])  # re-arm resets arrivals
        crash_point("store.read")                 # arrival 1 again: pass
        with pytest.raises(OSError):
            crash_point("store.read")
