"""FSM-SADF worst-case throughput analysis."""

from fractions import Fraction

import pytest

from repro.analysis.throughput import throughput
from repro.errors import ValidationError
from repro.graphs.synthetic import homogeneous_pipeline
from repro.scenarios import (
    Scenario,
    ScenarioFSM,
    enumerate_periodic_sequences,
    sequence_cycle_time,
    worst_case_cycle_time,
)
from repro.sdf.graph import SDFGraph


def two_actor_scenario(name: str, t_a, t_b) -> Scenario:
    """A 2-actor ring whose tokens persist across scenarios.

    The self-loop on ``a`` couples all three tokens every iteration, so
    the iteration matrix is irreducible and the normalised-vector
    exploration recurs (see the module docstring of
    ``repro.scenarios.analysis`` for why decoupled tokens would drift).
    """
    g = SDFGraph(name)
    g.add_actor("a", t_a)
    g.add_actor("b", t_b)
    g.add_edge("a", "a", tokens=1, name="self_a")
    g.add_edge("a", "b", tokens=1, name="ab")
    g.add_edge("b", "a", tokens=1, name="ba")
    return Scenario(name, g)


@pytest.fixture
def modes():
    return {
        "fast": two_actor_scenario("fast", 1, 1),
        "slow": two_actor_scenario("slow", 5, 3),
    }


class TestModel:
    def test_free_choice_fsm(self, modes):
        fsm = ScenarioFSM.free_choice(["fast", "slow"])
        fsm.validate(modes)
        assert set(fsm.scenario_names()) == {"fast", "slow"}

    def test_unknown_scenario_rejected(self, modes):
        fsm = ScenarioFSM.free_choice(["fast", "ghost"])
        with pytest.raises(ValidationError, match="unknown"):
            fsm.validate(modes)

    def test_token_count_mismatch_rejected(self, modes):
        g = SDFGraph("odd")
        g.add_actor("a", 1)
        g.add_edge("a", "a", tokens=5)
        bad = dict(modes)
        bad["odd"] = Scenario("odd", g)
        fsm = ScenarioFSM.free_choice(list(bad))
        with pytest.raises(ValidationError, match="token count"):
            fsm.validate(bad)

    def test_dead_end_state_rejected(self, modes):
        fsm = ScenarioFSM("s0")
        fsm.add_transition("s0", "fast", "s1")
        with pytest.raises(ValidationError, match="no outgoing"):
            fsm.validate(modes)


class TestWorstCase:
    def test_single_scenario_equals_plain_throughput(self, modes):
        fsm = ScenarioFSM.free_choice(["slow"])
        result = worst_case_cycle_time(modes, fsm)
        assert result.cycle_time == throughput(modes["slow"].graph).cycle_time

    def test_free_choice_at_least_each_mode(self, modes):
        fsm = ScenarioFSM.free_choice(["fast", "slow"])
        result = worst_case_cycle_time(modes, fsm)
        for scenario in modes.values():
            assert result.cycle_time >= throughput(scenario.graph).cycle_time

    def test_witness_is_realisable(self, modes):
        fsm = ScenarioFSM.free_choice(["fast", "slow"])
        result = worst_case_cycle_time(modes, fsm)
        assert result.witness
        assert sequence_cycle_time(modes, result.witness) == result.cycle_time

    def test_matches_enumeration_oracle(self, modes):
        fsm = ScenarioFSM.free_choice(["fast", "slow"])
        result = worst_case_cycle_time(modes, fsm)
        best = max(
            sequence_cycle_time(modes, seq)
            for seq in enumerate_periodic_sequences(fsm, max_length=4)
        )
        assert result.cycle_time == best

    def test_forced_alternation_averages(self, modes):
        # FSM forcing fast/slow alternation: the worst case is the
        # alternating product, not the slow mode alone.
        fsm = ScenarioFSM("F")
        fsm.add_transition("F", "fast", "S")
        fsm.add_transition("S", "slow", "F")
        result = worst_case_cycle_time(modes, fsm)
        assert result.cycle_time == sequence_cycle_time(modes, ["fast", "slow"])
        assert result.cycle_time < throughput(modes["slow"].graph).cycle_time

    def test_mixing_can_be_worse_than_either_mode(self):
        # Classic SADF effect: two modes with equal eigenvalues whose
        # eigenvectors mismatch — alternating them is strictly worse.
        scenarios = {
            "left": two_actor_scenario("left", 10, 0),
            "right": two_actor_scenario("right", 0, 10),
        }
        fsm = ScenarioFSM.free_choice(["left", "right"])
        result = worst_case_cycle_time(scenarios, fsm)
        each = {
            name: throughput(s.graph).cycle_time for name, s in scenarios.items()
        }
        assert all(result.cycle_time >= value for value in each.values())
        assert result.cycle_time == 10  # ab and ba tokens both traverse a 10

    def test_throughput_property(self, modes):
        fsm = ScenarioFSM.free_choice(["fast"])
        result = worst_case_cycle_time(modes, fsm)
        assert result.throughput == 1 / result.cycle_time


class TestKnownLimitation:
    def test_decoupling_compositions_are_detected(self):
        # Without the coupling self-loop, alternating the two modes
        # composes to a matrix whose tokens drift at different rates; the
        # normalised vectors never recur and the analysis must say so
        # rather than loop forever.
        from repro.errors import ConvergenceError

        def plain_ring(name, t_a, t_b):
            g = SDFGraph(name)
            g.add_actor("a", t_a)
            g.add_actor("b", t_b)
            g.add_edge("a", "b", tokens=1, name="ab")
            g.add_edge("b", "a", tokens=1, name="ba")
            return Scenario(name, g)

        scenarios = {
            "fast": plain_ring("fast", 1, 1),
            "slow": plain_ring("slow", 5, 3),
        }
        fsm = ScenarioFSM("F")
        fsm.add_transition("F", "fast", "S")
        fsm.add_transition("S", "slow", "F")
        with pytest.raises(ConvergenceError, match="do not recur"):
            worst_case_cycle_time(scenarios, fsm, max_nodes=500)


class TestSequenceTools:
    def test_sequence_cycle_time_of_repetition(self, modes):
        assert sequence_cycle_time(modes, ["slow"]) == throughput(
            modes["slow"].graph
        ).cycle_time
        double = sequence_cycle_time(modes, ["slow", "slow"])
        assert double == sequence_cycle_time(modes, ["slow"])

    def test_empty_sequence_rejected(self, modes):
        with pytest.raises(ValidationError):
            sequence_cycle_time(modes, [])

    def test_enumeration_respects_fsm(self, modes):
        fsm = ScenarioFSM("F")
        fsm.add_transition("F", "fast", "S")
        fsm.add_transition("S", "slow", "F")
        sequences = enumerate_periodic_sequences(fsm, max_length=4)
        assert ("fast", "slow") in sequences
        assert ("fast", "fast") not in sequences
