"""Latency analysis against hand computations and the simulator."""

from fractions import Fraction

import pytest

from repro.analysis.latency import latency
from repro.errors import ValidationError
from repro.graphs.examples import figure3_graph, section41_example
from repro.core.symbolic import symbolic_iteration
from repro.sdf.graph import SDFGraph
from repro.sdf.simulation import SelfTimedSimulation


class TestKnownValues:
    def test_section41_makespan_is_23(self):
        # "a single execution of the graph of Figure 1(a) takes 23 time
        # units" (Section 4.1).
        assert latency(section41_example()).makespan == 23

    def test_section41_first_completions(self):
        result = latency(section41_example())
        assert result.of("A1") == 2
        assert result.of("A2") == 4
        assert result.of("B1") == 6
        assert result.of("A3") == 11
        assert result.of("A6") == 23

    def test_figure3_values(self):
        result = latency(figure3_graph())
        # L fires at 0 (ends 3) and at 3 (ends 6); R starts at 6, ends 7.
        assert result.first_completion["L"] == 3
        assert result.last_completion["L"] == 6
        assert result.of("R") == 7
        assert result.makespan == 7

    def test_token_times_are_matrix_times_zero(self):
        g = figure3_graph()
        result = latency(g)
        iteration = symbolic_iteration(g)
        expected = tuple(
            iteration.matrix.row(k).norm() for k in range(iteration.token_count)
        )
        assert result.token_times == expected
        assert result.token_times == (7, 7, 6, 7)


class TestAgainstSimulator:
    def _first_completions_by_simulation(self, graph, horizon=10**6):
        from repro.sdf.repetition import repetition_vector

        sim = SelfTimedSimulation(graph, record_trace=True)
        gamma = repetition_vector(graph)
        needed = sum(gamma.values())
        while len(sim.trace) < needed and not sim.is_deadlocked:
            sim.step()
        first = {}
        for record in sim.trace:
            if record.actor not in first:
                first[record.actor] = record.end
        return first

    @pytest.mark.parametrize(
        "factory", [section41_example, figure3_graph], ids=["fig1", "fig3"]
    )
    def test_first_completion_matches_self_timed_execution(self, factory):
        g = factory()
        expected = self._first_completions_by_simulation(g)
        result = latency(g)
        for actor, value in expected.items():
            assert result.first_completion[actor] == value

    def test_ring_latencies(self, simple_ring):
        result = latency(simple_ring)
        assert result.first_completion == {"X": 2, "Y": 5, "Z": 9}
        assert result.makespan == 9


class TestPrecomputedIteration:
    def test_accepts_iteration(self):
        g = figure3_graph()
        iteration = symbolic_iteration(g)
        assert latency(g, iteration=iteration).makespan == 7

    def test_fractional_times(self):
        g = SDFGraph()
        g.add_actor("a", Fraction(1, 3))
        g.add_edge("a", "a", tokens=1)
        assert latency(g).makespan == Fraction(1, 3)
