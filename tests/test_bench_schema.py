"""Every BENCH_*.json at the repo root satisfies ``repro-bench-v1``."""

from __future__ import annotations

import json
import pathlib
import platform
import sys

import pytest

from repro.obs.check import BENCH_SCHEMA, SchemaError, check_file, validate_bench

ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILES = sorted(ROOT.glob("BENCH_*.json"))

sys.path.insert(0, str(ROOT / "benchmarks"))
from bench_common import entry, host_stamp, noise_floored, write_bench  # noqa: E402


def test_all_expected_baselines_present():
    names = {path.name for path in BENCH_FILES}
    assert {"BENCH_cache.json", "BENCH_resilience.json",
            "BENCH_obs.json"} <= names


@pytest.mark.parametrize("path", BENCH_FILES, ids=lambda p: p.name)
def test_baseline_validates(path):
    doc = json.loads(path.read_text())
    summary = validate_bench(doc)
    assert doc["schema"] == BENCH_SCHEMA
    assert summary["entries"] > 0


@pytest.mark.parametrize("path", BENCH_FILES, ids=lambda p: p.name)
def test_asserted_budgets_hold_in_shipped_baseline(path):
    """Entries carrying a baseline must satisfy it in the shipped file
    (ceilings for fractions, floors for speedups)."""
    doc = json.loads(path.read_text())
    for entry in doc["entries"]:
        if entry["baseline"] is None:
            continue
        if entry["unit"] == "ratio":
            assert entry["value"] <= entry["baseline"], entry["name"]
        else:  # speedup-style floors
            assert entry["value"] >= entry["baseline"], entry["name"]


def test_validator_rejects_malformed():
    with pytest.raises(SchemaError):
        validate_bench({"schema": BENCH_SCHEMA, "suite": "x",
                        "entries": [{"name": "n"}]})
    with pytest.raises(SchemaError):
        validate_bench({"schema": "other", "suite": "x", "entries": []})


class TestHostStamp:
    def test_stamp_names_platform_interpreter_and_commit(self):
        stamp = host_stamp()
        assert set(stamp) == {"platform", "python", "git_sha"}
        assert stamp["platform"] == platform.platform()
        assert stamp["python"] == platform.python_version()
        # This test runs inside the repo's own checkout.
        assert stamp["git_sha"] is not None and len(stamp["git_sha"]) == 40

    def test_write_bench_stamps_host_and_accumulates_history(self, tmp_path):
        target = tmp_path / "BENCH_demo.json"
        history = tmp_path / "history.jsonl"
        for _ in range(2):
            doc = write_bench(target, "demo", [entry("m", "s", 1.0)],
                              history=history)
        assert doc["host"] == json.loads(target.read_text())["host"]
        assert doc["host"]["python"] == platform.python_version()
        lines = [json.loads(line) for line in history.read_text().splitlines()]
        assert len(lines) == 2  # appended, not overwritten
        for line in lines:
            validate_bench(line)
            assert line["written"].endswith("+00:00")  # UTC stamped
        # check_file recognises the journal as a bench history.
        assert check_file(str(history)) == {"runs": 2}

    def test_history_opt_out(self, tmp_path):
        target = tmp_path / "BENCH_demo.json"
        write_bench(target, "demo", [entry("m", "s", 1.0)], history=False)
        assert target.exists()
        assert not (tmp_path / "history.jsonl").exists()

    def test_shipped_obs_baseline_carries_a_host_stamp(self):
        doc = json.loads((ROOT / "BENCH_obs.json").read_text())
        assert doc["host"] is not None
        assert doc["host"]["platform"]


class TestNoiseFloor:
    def test_negative_measurement_clamps_and_flags(self):
        clamped = noise_floored("ab_overhead", "ratio", -0.0181, note="a/b")
        assert clamped["value"] == 0.0
        assert clamped["meta"]["noise_floored"] is True
        assert clamped["meta"]["measured"] == -0.0181
        assert clamped["meta"]["note"] == "a/b"

    def test_positive_measurement_passes_through(self):
        clean = noise_floored("ab_overhead", "ratio", 0.004)
        assert clean["value"] == 0.004
        assert "noise_floored" not in clean["meta"]
        assert "measured" not in clean["meta"]

    def test_shipped_obs_overhead_is_not_negative(self):
        doc = json.loads((ROOT / "BENCH_obs.json").read_text())
        ab = next(e for e in doc["entries"]
                  if e["name"] == "tracing_ab_overhead_fraction")
        assert ab["value"] >= 0.0
