"""Every BENCH_*.json at the repo root satisfies ``repro-bench-v1``."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.obs.check import BENCH_SCHEMA, SchemaError, validate_bench

ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILES = sorted(ROOT.glob("BENCH_*.json"))


def test_all_expected_baselines_present():
    names = {path.name for path in BENCH_FILES}
    assert {"BENCH_cache.json", "BENCH_resilience.json",
            "BENCH_obs.json"} <= names


@pytest.mark.parametrize("path", BENCH_FILES, ids=lambda p: p.name)
def test_baseline_validates(path):
    doc = json.loads(path.read_text())
    summary = validate_bench(doc)
    assert doc["schema"] == BENCH_SCHEMA
    assert summary["entries"] > 0


@pytest.mark.parametrize("path", BENCH_FILES, ids=lambda p: p.name)
def test_asserted_budgets_hold_in_shipped_baseline(path):
    """Entries carrying a baseline must satisfy it in the shipped file
    (ceilings for fractions, floors for speedups)."""
    doc = json.loads(path.read_text())
    for entry in doc["entries"]:
        if entry["baseline"] is None:
            continue
        if entry["unit"] == "ratio":
            assert entry["value"] <= entry["baseline"], entry["name"]
        else:  # speedup-style floors
            assert entry["value"] >= entry["baseline"], entry["name"]


def test_validator_rejects_malformed():
    with pytest.raises(SchemaError):
        validate_bench({"schema": BENCH_SCHEMA, "suite": "x",
                        "entries": [{"name": "n"}]})
    with pytest.raises(SchemaError):
        validate_bench({"schema": "other", "suite": "x", "entries": []})
