"""Unit and property tests for max-plus vectors and matrices."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maxplus.algebra import EPSILON
from repro.maxplus.matrix import MaxPlusMatrix, MaxPlusVector

entries = st.one_of(
    st.just(EPSILON), st.integers(min_value=-20, max_value=20)
)


def matrices(size):
    return st.lists(
        st.lists(entries, min_size=size, max_size=size), min_size=size, max_size=size
    ).map(MaxPlusMatrix)


def vectors(size):
    return st.lists(entries, min_size=size, max_size=size).map(MaxPlusVector)


class TestVector:
    def test_unit_vector(self):
        v = MaxPlusVector.unit(3, 1)
        assert v.entries == (EPSILON, 0, EPSILON)

    def test_unit_vector_out_of_range(self):
        with pytest.raises(IndexError):
            MaxPlusVector.unit(3, 3)

    def test_zeros_and_epsilons(self):
        assert MaxPlusVector.zeros(2).entries == (0, 0)
        assert MaxPlusVector.epsilons(2).entries == (EPSILON, EPSILON)

    def test_max_with(self):
        a = MaxPlusVector([1, EPSILON, 5])
        b = MaxPlusVector([0, 2, 7])
        assert a.max_with(b).entries == (1, 2, 7)

    def test_max_with_size_mismatch(self):
        with pytest.raises(ValueError):
            MaxPlusVector([1]).max_with(MaxPlusVector([1, 2]))

    def test_add_scalar_skips_epsilon(self):
        v = MaxPlusVector([1, EPSILON]).add_scalar(3)
        assert v.entries == (4, EPSILON)

    def test_norm_and_normalised(self):
        v = MaxPlusVector([2, 5, EPSILON])
        assert v.norm() == 5
        assert v.normalised().entries == (-3, 0, EPSILON)

    def test_norm_of_epsilon_vector(self):
        v = MaxPlusVector.epsilons(3)
        assert v.norm() == EPSILON
        assert v.normalised() == v

    def test_inner_product(self):
        a = MaxPlusVector([1, 2])
        b = MaxPlusVector([10, 0])
        assert a.inner(b) == 11

    def test_hashable_and_equal(self):
        assert MaxPlusVector([1, 2]) == MaxPlusVector([1, 2])
        assert hash(MaxPlusVector([1, 2])) == hash(MaxPlusVector([1, 2]))
        assert MaxPlusVector([1, 2]) != MaxPlusVector([2, 1])


class TestMatrixBasics:
    def test_identity_acts_trivially(self):
        m = MaxPlusMatrix.identity(3)
        v = MaxPlusVector([1, EPSILON, -4])
        assert m.apply(v) == v

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            MaxPlusMatrix([[1, 2], [3]])

    def test_apply_known(self):
        m = MaxPlusMatrix([[0, 2], [EPSILON, 1]])
        v = MaxPlusVector([5, 3])
        # row 0: max(0+5, 2+3) = 5; row 1: max(ε, 1+3) = 4
        assert m.apply(v).entries == (5, 4)

    def test_apply_size_mismatch(self):
        with pytest.raises(ValueError):
            MaxPlusMatrix.identity(2).apply(MaxPlusVector([1, 2, 3]))

    def test_from_columns_orientation(self):
        c0 = MaxPlusVector([1, 2])
        c1 = MaxPlusVector([3, 4])
        m = MaxPlusMatrix.from_columns([c0, c1])
        assert m.column(0) == c0
        assert m.column(1) == c1
        assert m[0, 1] == 3

    def test_transpose(self):
        m = MaxPlusMatrix([[1, 2], [3, 4]])
        assert m.transpose().rows == ((1, 3), (2, 4))

    def test_finite_entry_count(self):
        m = MaxPlusMatrix([[1, EPSILON], [EPSILON, EPSILON]])
        assert m.finite_entry_count() == 1

    def test_pretty_renders_epsilon_as_dot(self):
        m = MaxPlusMatrix([[1, EPSILON]])
        assert "." in m.pretty() and "1" in m.pretty()


class TestMatrixAlgebra:
    @given(m=matrices(3), v=vectors(3))
    @settings(max_examples=50)
    def test_identity_multiplication(self, m, v):
        i = MaxPlusMatrix.identity(3)
        assert i.multiply(m) == m
        assert m.multiply(i) == m
        assert i.apply(v) == v

    @given(a=matrices(3), b=matrices(3), v=vectors(3))
    @settings(max_examples=50)
    def test_multiply_apply_compose(self, a, b, v):
        # (A ⊗ B) ⊗ v == A ⊗ (B ⊗ v)
        assert a.multiply(b).apply(v) == a.apply(b.apply(v))

    @given(a=matrices(2), b=matrices(2), c=matrices(2))
    @settings(max_examples=50)
    def test_multiply_associative(self, a, b, c):
        assert a.multiply(b).multiply(c) == a.multiply(b.multiply(c))

    @given(m=matrices(3))
    @settings(max_examples=30)
    def test_power_addition_law(self, m):
        assert m.power(2).multiply(m.power(3)) == m.power(5)

    @given(m=matrices(3))
    @settings(max_examples=30)
    def test_power_zero_is_identity(self, m):
        assert m.power(0) == MaxPlusMatrix.identity(3)

    def test_power_negative_rejected(self):
        with pytest.raises(ValueError):
            MaxPlusMatrix.identity(2).power(-1)

    def test_power_requires_square(self):
        with pytest.raises(ValueError):
            MaxPlusMatrix([[1, 2]]).power(2)

    @given(a=matrices(3), b=matrices(3))
    @settings(max_examples=50)
    def test_max_with_commutes(self, a, b):
        assert a.max_with(b) == b.max_with(a)


class TestKleeneStar:
    def test_star_of_strictly_negative(self):
        m = MaxPlusMatrix([[EPSILON, -1], [-2, EPSILON]])
        star = m.star()
        # Longest paths: diagonal 0; off-diagonal the single edges.
        assert star[0, 0] == 0 and star[1, 1] == 0
        assert star[0, 1] == -1 and star[1, 0] == -2

    def test_star_diverges_on_positive_cycle(self):
        m = MaxPlusMatrix([[EPSILON, 1], [1, EPSILON]])
        with pytest.raises(ValueError):
            m.star()

    def test_star_zero_cycle_converges(self):
        m = MaxPlusMatrix([[EPSILON, 0], [0, EPSILON]])
        star = m.star()
        assert star[0, 1] == 0 and star[1, 0] == 0

    def test_star_transitive_path(self):
        m = MaxPlusMatrix(
            [
                [EPSILON, EPSILON, EPSILON],
                [-1, EPSILON, EPSILON],
                [EPSILON, -2, EPSILON],
            ]
        )
        # path 0 -> 1 -> 2 of weight -3 (edges j -> i for entry [i][j])
        assert m.star()[2, 0] == -3
