"""Every example script must run end to end (they are documentation)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST = [
    "quickstart.py",
    "symbolic_execution.py",
    "csdf_pipeline.py",
    "hsdf_conversion_tour.py",
    "scenario_worst_case.py",
]
SLOW = [
    "buffer_tradeoff.py",
    "design_advisor.py",
    "multiprocessor_mapping.py",
    "prefetch_abstraction.py",
]


@pytest.mark.parametrize("script", FAST)
def test_fast_examples(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    assert capsys.readouterr().out.strip()


@pytest.mark.parametrize("script", SLOW)
def test_slow_examples(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    assert capsys.readouterr().out.strip()


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(FAST) | set(SLOW)
