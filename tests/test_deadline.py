"""Cooperative deadlines and cancellation threaded through the analyses."""

from __future__ import annotations

import time

import pytest

from repro.analysis.deadline import CancelToken, Deadline
from repro.analysis.throughput import throughput
from repro.core.symbolic import symbolic_iteration
from repro.errors import AnalysisCancelled, AnalysisInterrupted, AnalysisTimeout
from repro.graphs.examples import figure3_graph
from repro.graphs.multimedia import mp3_playback
from repro.sdf.transform import traditional_hsdf


class TestDeadline:
    def test_unlimited_never_expires(self):
        d = Deadline.unlimited()
        assert d.remaining() is None
        assert not d.expired
        for _ in range(1000):
            d.check()

    def test_after_expires(self):
        d = Deadline.after(0.01)
        time.sleep(0.02)
        assert d.expired
        with pytest.raises(AnalysisTimeout) as exc:
            d.check_now()
        assert exc.value.budget == pytest.approx(0.01)
        assert exc.value.elapsed >= 0.01

    def test_strided_check_eventually_fires(self):
        d = Deadline.after(0.0, stride=64)
        time.sleep(0.005)
        with pytest.raises(AnalysisTimeout):
            for _ in range(65):  # at most one full stride before the clock
                d.check()

    def test_checkpoint_progress_is_live(self):
        d = Deadline.after(0.01)
        progress = d.checkpoint("stage-x", {"step": 0})
        progress["step"] = 41
        time.sleep(0.02)
        with pytest.raises(AnalysisTimeout) as exc:
            d.check_now()
        assert exc.value.stage == "stage-x"
        assert exc.value.progress == {"step": 41}
        # The exception snapshots the dict: later mutation is invisible.
        progress["step"] = 99
        assert exc.value.progress == {"step": 41}

    def test_sub_deadline_clamped_to_parent(self):
        parent = Deadline.after(10.0)
        child = parent.sub(0.001)
        assert child.remaining() <= 0.001
        wide = parent.sub(100.0)
        assert wide.remaining() <= 10.0

    def test_sub_shares_token(self):
        token = CancelToken()
        parent = Deadline(budget=None, token=token)
        child = parent.sub(5.0)
        token.cancel("stop")
        with pytest.raises(AnalysisCancelled):
            child.check_now()

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(budget=-1.0)


class TestCancelToken:
    def test_sticky(self):
        token = CancelToken()
        assert not token.cancelled
        token.cancel("user hit ^C")
        assert token.cancelled
        token.cancel("again")  # idempotent
        with pytest.raises(AnalysisCancelled) as exc:
            token.raise_if_cancelled(stage="s")
        assert "user hit ^C" in str(exc.value)

    def test_cancellation_is_a_distinct_family(self):
        token = CancelToken()
        token.cancel()
        d = Deadline(budget=None, token=token)
        with pytest.raises(AnalysisCancelled):
            d.check_now()
        # Both interrupts share one catchable base.
        assert issubclass(AnalysisCancelled, AnalysisInterrupted)
        assert issubclass(AnalysisTimeout, AnalysisInterrupted)


class TestThreadedThroughAnalyses:
    """The deadline actually reaches every hot loop."""

    @pytest.mark.parametrize("method", ["symbolic", "simulation", "hsdf"])
    def test_expired_deadline_interrupts(self, method):
        g = mp3_playback()
        with pytest.raises(AnalysisTimeout) as exc:
            throughput(g, method=method, deadline=Deadline.after(0.0))
        assert exc.value.stage is not None

    def test_timeout_carries_progress(self):
        g = mp3_playback()
        with pytest.raises(AnalysisTimeout) as exc:
            traditional_hsdf(g, deadline=Deadline.after(0.005))
        assert exc.value.stage == "traditional-hsdf"
        assert "copies_total" in exc.value.progress

    def test_generous_deadline_is_transparent(self):
        g = figure3_graph()
        bare = throughput(g)
        timed = throughput(g, deadline=Deadline.after(60.0))
        assert timed.cycle_time == bare.cycle_time

    def test_cancel_token_aborts_symbolic(self):
        g = mp3_playback()
        token = CancelToken()
        token.cancel("shutdown")
        with pytest.raises(AnalysisCancelled):
            symbolic_iteration(g, deadline=Deadline(budget=None, token=token))

    def test_rerun_after_timeout_equals_fresh_run(self):
        """Cancellation never corrupts graph state: interrupting an
        analysis and re-running it gives exactly the fresh answer."""
        g = mp3_playback()
        fingerprint = g.fingerprint()
        with pytest.raises(AnalysisTimeout):
            throughput(g, method="hsdf", deadline=Deadline.after(0.005))
        assert g.fingerprint() == fingerprint
        rerun = throughput(g, method="symbolic")
        assert rerun.cycle_time == throughput(mp3_playback()).cycle_time
