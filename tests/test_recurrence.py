"""Max-plus recurrences, eigenvectors, transient and bottleneck analyses."""

import random
from fractions import Fraction

import pytest

from repro.analysis.bottleneck import bottleneck
from repro.analysis.throughput import throughput
from repro.analysis.transient import transient_analysis
from repro.core.symbolic import symbolic_iteration
from repro.errors import ConvergenceError
from repro.graphs.examples import figure3_graph, section41_example
from repro.graphs.synthetic import homogeneous_pipeline
from repro.maxplus.algebra import EPSILON
from repro.maxplus.matrix import MaxPlusMatrix, MaxPlusVector
from repro.maxplus.recurrence import Recurrence, eigenvector, solve_recurrence


class TestSolveRecurrence:
    def test_scalar_growth(self):
        m = MaxPlusMatrix([[3]])
        rec = solve_recurrence(m)
        assert rec.rate == 3
        assert rec.transient == 0 and rec.cyclicity == 1
        assert rec.state(10) == MaxPlusVector([30])

    def test_cyclicity_two(self):
        # A pure 2-cycle swaps its phases: cyclicity 2.
        m = MaxPlusMatrix([[EPSILON, 2], [4, EPSILON]])
        rec = solve_recurrence(m, MaxPlusVector([0, 1]))
        assert rec.rate == 3
        assert rec.cyclicity in (1, 2)
        # Closed form vs direct iteration, far beyond the prefix.
        x = MaxPlusVector([0, 1])
        for _ in range(25):
            x = m.apply(x)
        assert rec.state(25) == x

    def test_transient_before_regime(self):
        # One slow initial entry dominates for a few iterations, then the
        # eigen-regime takes over.
        m = MaxPlusMatrix([[1, EPSILON], [0, 5]])
        rec = solve_recurrence(m, MaxPlusVector([100, 0]))
        x = MaxPlusVector([100, 0])
        for _ in range(40):
            x = m.apply(x)
        assert rec.state(40) == x
        assert rec.rate == 5

    def test_closed_form_matches_iteration_randomised(self):
        rng = random.Random(7)
        for _ in range(10):
            size = rng.randint(1, 4)
            m = MaxPlusMatrix(
                [rng.randint(0, 9) for _ in range(size)] for _ in range(size)
            )
            rec = solve_recurrence(m)
            x = MaxPlusVector.zeros(size)
            for k in range(30):
                assert rec.state(k) == x, k
                x = m.apply(x)

    def test_reducible_classes_get_their_own_rates(self):
        # Two independent self-loops at different speeds: the cycle-time
        # vector separates them (no single λ describes this system).
        m = MaxPlusMatrix([[1, EPSILON], [EPSILON, 2]])
        rec = solve_recurrence(m)
        assert rec.rates == (1, 2)
        assert rec.rate == 2
        x = MaxPlusVector.zeros(2)
        for k in range(20):
            assert rec.state(k) == x
            x = m.apply(x)

    def test_downstream_entry_inherits_fastest_influence(self):
        # Entry 1 is driven by the rate-5 loop it sits on; entry 0 only
        # by its own rate-1 loop.
        from repro.maxplus.recurrence import cycle_time_vector

        m = MaxPlusMatrix([[1, EPSILON], [0, 5]])
        assert cycle_time_vector(m) == (1, 5)
        # And the other way round: a slow loop fed by a fast one speeds up.
        m2 = MaxPlusMatrix([[1, 0], [EPSILON, 5]])
        assert cycle_time_vector(m2) == (5, 5)

    def test_acyclic_entries_rate_zero(self):
        from repro.maxplus.recurrence import cycle_time_vector

        m = MaxPlusMatrix([[EPSILON, EPSILON], [0, EPSILON]])
        assert cycle_time_vector(m) == (0, 0)

    def test_requires_square(self):
        with pytest.raises(ValueError):
            solve_recurrence(MaxPlusMatrix([[1, 2]]))

    def test_negative_iteration_index(self):
        rec = solve_recurrence(MaxPlusMatrix([[1]]))
        with pytest.raises(ValueError):
            rec.state(-1)


class TestEigenvector:
    def test_eigenpair_property(self):
        m = MaxPlusMatrix([[EPSILON, 2], [4, EPSILON]])
        lam, vector = eigenvector(m)
        assert lam == 3
        assert m.apply(vector) == vector.add_scalar(lam)

    def test_on_iteration_matrix(self):
        m = symbolic_iteration(figure3_graph()).matrix
        lam, vector = eigenvector(m)
        assert lam == 7
        assert m.apply(vector) == vector.add_scalar(lam)

    def test_nilpotent_rejected(self):
        m = MaxPlusMatrix([[EPSILON, 1], [EPSILON, EPSILON]])
        with pytest.raises(ValueError):
            eigenvector(m)

    def test_eigenvector_start_has_no_transient(self):
        m = symbolic_iteration(section41_example()).matrix
        lam, vector = eigenvector(m)
        rec = solve_recurrence(m, vector)
        assert rec.transient == 0 and rec.cyclicity == 1


class TestTransient:
    def test_steady_gap_is_period(self):
        g = section41_example()
        analysis = transient_analysis(g)
        assert analysis.period == 23
        gaps = analysis.gaps(10)
        assert gaps[-1] == 23

    def test_completion_zero_is_initial(self):
        analysis = transient_analysis(figure3_graph())
        assert analysis.completion(0) == 0

    def test_closed_form_beyond_horizon(self):
        analysis = transient_analysis(figure3_graph(), horizon=4)
        # iteration completions grow by λ = 7 in the regime.
        far = analysis.completion(1000)
        farther = analysis.completion(1001)
        assert farther - far == 7

    def test_pipeline_has_startup_transient(self):
        # A deep pipeline with ample feedback tokens starts faster than
        # its steady period while it fills.
        g = homogeneous_pipeline(4, execution_times=[1, 1, 1, 4], tokens=4)
        analysis = transient_analysis(g)
        gaps = analysis.gaps(8)
        assert gaps[-1] == analysis.period
        assert min(gaps) <= analysis.period


class TestBottleneck:
    def test_identifies_dominant_self_loop(self):
        g = homogeneous_pipeline(3, execution_times=[1, 9, 1], tokens=5)
        report = bottleneck(g)
        assert report.cycle_time == 9
        assert report.channels == ("self_P2",)
        assert "P2" in report.actors
        assert "period 9" in report.describe()

    def test_figure1_critical_tokens(self):
        report = bottleneck(section41_example())
        assert report.cycle_time == 23
        # The only token sits on the A6→A1 back edge: it must be critical.
        assert len(report.tokens) == 1
        assert report.actors == ("A6", "A1")

    def test_slack_estimate(self):
        g = homogeneous_pipeline(2, execution_times=[4, 4], tokens=1)
        report = bottleneck(g)
        assert report.cycle_time == 8
        assert report.slack_per_token == Fraction(8 * 1, 2)

    def test_unbounded_report(self):
        from repro.sdf.graph import SDFGraph

        g = SDFGraph()
        g.add_actor("a", 0)
        g.add_edge("a", "a", tokens=1)
        report = bottleneck(g)
        assert report.bounded  # zero-time loop still has a cycle (λ = 0)
        assert report.cycle_time == 0

    def test_matches_throughput(self):
        for factory in (figure3_graph, section41_example):
            g = factory()
            assert bottleneck(g).cycle_time == throughput(g).cycle_time
