"""Property tests: the linter is total, and its verdicts mean something.

Two contracts hold over the whole strategy space:

* :func:`repro.lint.run_lint` never raises — broken models come back as
  findings, not exceptions;
* a report with zero errors certifies the graph analysable: exact
  throughput analysis succeeds on it.

Plus the repository hygiene gate: every benchmark graph in the Table-1
registry is free of error-severity findings (CI runs the same check via
``repro lint --registry --format sarif --fail-on error``).
"""

import pytest
from hypothesis import given, settings

from repro.analysis.cache import AnalysisCache
from repro.analysis.throughput import throughput
from repro.graphs.registry import TABLE1_CASES
from repro.lint import run_lint
from tests.strategies import consistent_connected_sdf_graphs


@settings(max_examples=200, deadline=None)
@given(graph=consistent_connected_sdf_graphs(max_extra_tokens=3))
def test_lint_never_raises_and_clean_means_analysable(graph):
    report = run_lint(graph, cache=AnalysisCache(maxsize=2))
    assert report.graph == graph.name
    assert report.fingerprint == graph.fingerprint()
    for finding in report.findings:
        assert finding.severity in ("info", "warning", "error")
        assert finding.message
    if report.ok:
        # Zero errors certifies analysability: exact throughput must
        # not hit deadlock/inconsistency (the strategy's graphs are
        # correct by construction, so lint must agree).
        result = throughput(graph)
        assert result.cycle_time is not None


@settings(max_examples=100, deadline=None)
@given(graph=consistent_connected_sdf_graphs())
def test_lint_is_deterministic(graph):
    first = run_lint(graph, cache=AnalysisCache(maxsize=2))
    second = run_lint(graph, cache=AnalysisCache(maxsize=2))
    assert [f.as_dict() for f in first.findings] == [
        f.as_dict() for f in second.findings
    ]


@pytest.mark.parametrize("case", TABLE1_CASES, ids=lambda c: c.name)
def test_registry_graphs_are_lint_error_free(case):
    report = run_lint(case.build(), cache=AnalysisCache(maxsize=2))
    assert report.ok, "\n".join(str(f) for f in report.errors)
