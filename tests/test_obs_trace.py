"""Structured tracing: span nesting, exports, adoption, fast paths."""

from __future__ import annotations

import json
import threading

import pytest

from repro.analysis.deadline import Deadline
from repro.obs.check import (
    SchemaError,
    validate_chrome_trace,
    validate_span_jsonl,
)
from repro.obs.trace import (
    Tracer,
    add_event,
    current_span,
    current_span_id,
    current_tracer,
    span,
)
from repro.obs.trace import _NULL_SPAN


class TestDisabledFastPath:
    def test_span_returns_shared_null_object(self):
        assert current_tracer() is None
        assert span("anything", k=1) is _NULL_SPAN
        assert span("other") is _NULL_SPAN

    def test_null_span_is_inert(self):
        with span("x", a=1) as s:
            assert s.id is None
            assert s.set(b=2) is s

    def test_add_event_is_noop(self):
        add_event("cache-hit", graph="g")  # must not raise

    def test_checkpoint_hook_is_noop(self):
        deadline = Deadline.unlimited()
        progress = deadline.checkpoint("stage", {"n": 0})
        progress["n"] = 7  # live dict still works without a tracer
        assert deadline._progress["n"] == 7

    def test_no_current_span(self):
        assert current_span() is None
        assert current_span_id() is None


class TestSpanLifecycle:
    def test_nesting_and_parent_links(self):
        with Tracer() as tracer:
            with span("outer") as outer:
                assert current_span_id() == outer.id
                with span("inner") as inner:
                    assert inner.parent_id == outer.id
            assert current_span() is None
        spans = {s.name: s for s in tracer.spans()}
        assert spans["inner"].parent_id == spans["outer"].id
        assert spans["outer"].parent_id is None
        assert tracer.open_spans == 0

    def test_intervals_nest(self):
        with Tracer() as tracer:
            with span("outer"):
                with span("inner"):
                    pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["outer"].start <= spans["inner"].start
        assert spans["inner"].end <= spans["outer"].end

    def test_exception_stamps_error_and_closes(self):
        with Tracer() as tracer:
            with pytest.raises(ValueError):
                with span("doomed"):
                    raise ValueError("boom")
        (doomed,) = tracer.spans()
        assert doomed.closed and doomed.end is not None
        assert doomed.args["error"] == "ValueError"
        assert "boom" in doomed.args["error_message"]
        assert tracer.open_spans == 0

    def test_set_annotations(self):
        with Tracer() as tracer:
            with span("s", a=1) as s:
                s.set(b=2)
        (only,) = tracer.spans()
        assert only.args == {"a": 1, "b": 2}

    def test_install_restores_previous(self):
        first = Tracer()
        second = Tracer()
        with first:
            assert current_tracer() is first
            with second:
                assert current_tracer() is second
            assert current_tracer() is first
        assert current_tracer() is None

    def test_events_carry_enclosing_span(self):
        with Tracer() as tracer:
            with span("ctx") as ctx:
                add_event("ping", detail=1)
        (event,) = tracer.events()
        assert event["span"] == ctx.id
        assert event["args"] == {"detail": 1}


class TestProgressPiggyback:
    def test_checkpoint_attaches_live_dict(self):
        deadline = Deadline.unlimited()
        with Tracer() as tracer:
            with span("karp"):
                progress = deadline.checkpoint("karp-levels", {"level": 0})
                for level in range(5):
                    progress["level"] = level
        (karp,) = tracer.spans()
        assert karp.args["progress"]["karp-levels"] == {"level": 4}

    def test_final_values_snapshotted_not_referenced(self):
        deadline = Deadline.unlimited()
        with Tracer() as tracer:
            with span("stage"):
                progress = deadline.checkpoint("s", {"n": 1})
        progress["n"] = 999  # mutation after close must not leak in
        (stage,) = tracer.spans()
        assert stage.args["progress"]["s"] == {"n": 1}

    def test_repeated_checkpoint_same_dict_attaches_once(self):
        deadline = Deadline.unlimited()
        with Tracer() as tracer:
            with span("stage"):
                progress = deadline.checkpoint("s", {"n": 0})
                deadline.checkpoint("s", progress)
        (stage,) = tracer.spans()
        assert stage.args["progress"] == {"s": {"n": 0}}


class TestThreads:
    def test_worker_threads_get_own_lanes_and_nesting(self):
        with Tracer() as tracer:
            barrier = threading.Barrier(2)

            def work(name):
                barrier.wait()
                with span(f"outer-{name}"):
                    with span(f"inner-{name}"):
                        pass

            threads = [
                threading.Thread(target=work, args=(i,)) for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        spans = {s.name: s for s in tracer.spans()}
        assert spans["inner-0"].parent_id == spans["outer-0"].id
        assert spans["inner-1"].parent_id == spans["outer-1"].id
        assert spans["outer-0"].tid != spans["outer-1"].tid
        assert tracer.open_spans == 0


class TestExports:
    def _sample_tracer(self):
        tracer = Tracer()
        with tracer:
            with span("root", graph="g"):
                with span("child"):
                    add_event("tick")
        return tracer

    def test_jsonl_roundtrip_validates(self, tmp_path):
        tracer = self._sample_tracer()
        path = tmp_path / "trace.jsonl"
        count = tracer.write_jsonl(path)
        summary = validate_span_jsonl(path.read_text())
        assert summary == {"spans": count, "roots": 1}

    def test_chrome_trace_validates(self, tmp_path):
        tracer = self._sample_tracer()
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(path)
        data = json.loads(path.read_text())
        summary = validate_chrome_trace(data)
        assert summary["phase_X"] == 2
        assert summary["phase_i"] == 1
        names = {e["name"] for e in data["traceEvents"] if e["ph"] == "M"}
        assert {"thread_name", "process_name"} <= names

    def test_chrome_trace_carries_span_ids(self):
        tracer = self._sample_tracer()
        events = tracer.chrome_trace()["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert all(e["args"]["span_id"] for e in complete)

    def test_adopt_merges_foreign_process_lane(self):
        tracer = self._sample_tracer()
        foreign = [
            dict(row, pid=99999, id=f"f{index}")
            for index, row in enumerate(tracer.export_spans())
        ]
        parent = Tracer()
        with parent:
            with span("batch"):
                pass
        adopted = parent.adopt(foreign, lane_name="worker[99999]")
        assert adopted == len(foreign)
        trace = parent.chrome_trace()
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert 99999 in pids and parent.pid in pids
        lanes = {
            (e["pid"], e["args"]["name"])
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert (99999, "worker[99999]") in lanes

    def test_validator_rejects_escaping_child(self):
        bad = "\n".join([
            json.dumps({"id": "1", "parent": None, "name": "p", "pid": 1,
                        "tid": 0, "start": 0.0, "end": 1.0, "args": {}}),
            json.dumps({"id": "2", "parent": "1", "name": "c", "pid": 1,
                        "tid": 0, "start": 0.5, "end": 2.0, "args": {}}),
        ])
        with pytest.raises(SchemaError, match="escapes parent"):
            validate_span_jsonl(bad)


class TestAnalysisIntegration:
    def test_throughput_emits_stage_spans(self):
        from repro.analysis.throughput import throughput
        from repro.graphs.examples import figure3_graph

        with Tracer() as tracer:
            throughput(figure3_graph())
        names = [s.name for s in tracer.spans()]
        root = [s for s in tracer.spans() if s.name == "throughput"]
        assert len(root) == 1
        assert {"repetition-vector", "symbolic-conversion",
                "mcm-eigenvalue"} <= set(names)
        children = {s.name for s in tracer.spans()
                    if s.parent_id == root[0].id}
        assert "symbolic-conversion" in children

    def test_cache_emits_hit_and_miss_events(self):
        from repro.analysis.cache import AnalysisCache
        from repro.graphs.examples import figure3_graph

        cache = AnalysisCache()
        graph = figure3_graph()
        with Tracer() as tracer:
            cache.throughput(graph)
            cache.throughput(graph)
        kinds = [e["name"] for e in tracer.events()]
        assert kinds.count("cache-miss") == 1
        assert kinds.count("cache-hit") == 1


class TestIdUniquenessAcrossTracers:
    def test_fresh_tracers_never_reuse_span_ids(self):
        """A process-pool worker builds one tracer per job; merged
        exports must still have globally unique ids (the span-JSONL
        validator rejects duplicates)."""
        rows = []
        for _ in range(3):
            with Tracer() as tracer:
                with span("analyse"):
                    with span("stage"):
                        pass
            rows.extend(tracer.export_spans())
        ids = [r["id"] for r in rows]
        assert len(ids) == len(set(ids)) == 6

    def test_span_from_another_tracer_is_not_a_parent(self):
        """A forked worker inherits the coordinator's innermost-span
        contextvar; a fresh tracer must not link its spans to that
        foreign span (different clock, different id space)."""
        with Tracer():
            with span("coordinator"):
                with Tracer() as inner_tracer:
                    with span("worker-job") as job:
                        assert job.parent_id is None
        (job_span,) = inner_tracer.spans()
        assert job_span.name == "worker-job"
        assert job_span.parent_id is None


class TestAdoptRebasing:
    def test_adopt_rebases_foreign_clocks_onto_the_parent_timeline(self):
        parent = Tracer()
        with parent:
            with span("batch"):
                pass
        foreign = [{"id": "w.1.1", "parent": None, "name": "analyse",
                    "pid": 9999, "tid": 0, "start": 0.0, "end": 0.5,
                    "cpu": None, "mem_peak": 0, "args": {}}]
        # The foreign tracer was built 10 wall-seconds after the parent:
        # its t=0 is the parent's t=10.
        parent.adopt(foreign, lane_name="worker[9999]",
                     epoch=parent.epoch_wall + 10.0)
        (row,) = [r for r in parent.export_spans() if r["pid"] == 9999]
        assert row["start"] == pytest.approx(10.0)
        assert row["end"] == pytest.approx(10.5)
        # The caller's dict is not mutated.
        assert foreign[0]["start"] == 0.0

    def test_adopt_without_epoch_keeps_times_verbatim(self):
        parent = Tracer()
        foreign = [{"id": "w.1.1", "parent": None, "name": "analyse",
                    "pid": 9999, "tid": 0, "start": 3.0, "end": 3.5,
                    "cpu": None, "mem_peak": 0, "args": {}}]
        parent.adopt(foreign)
        (row,) = parent.export_spans()
        assert row["start"] == 3.0
