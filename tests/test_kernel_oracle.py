"""Differential-oracle suite: numpy kernels vs the exact reference.

Every graph in the Table-1 registry and 200+ hypothesis-generated
graphs run through both concrete kernels; :func:`oracle.assert_backends_agree`
asserts bit-identical results, matching error behaviour, provenance
kernel labels and witness re-verification.  The dense max-plus semiring
is cross-checked separately against :class:`MaxPlusMatrix`, including
all-ε rows and columns.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

pytest.importorskip("numpy")

from oracle import assert_backends_agree
from strategies import consistent_connected_sdf_graphs

from repro.graphs import TABLE1_CASES
from repro.kernels.maxplus import (
    from_dense,
    from_dense_vector,
    mp_matmul,
    mp_matvec,
    mp_power,
    to_dense,
    to_dense_vector,
)
from repro.maxplus.algebra import EPSILON
from repro.maxplus.matrix import MaxPlusMatrix, MaxPlusVector

#: Registry graphs whose self-timed state space is small enough for the
#: (slow, pure-python) exact simulator to explore twice in test time.
_FAST_SIMULATION = ("modem", "mp3 dec. block par.", "mp3 dec. granule par.")

_CASES = {case.name: case for case in TABLE1_CASES}


@pytest.mark.parametrize("name", sorted(_CASES))
@pytest.mark.parametrize("method", ["symbolic", "hsdf"])
def test_registry_agreement(name, method):
    assert_backends_agree(_CASES[name].build(), method)


@pytest.mark.parametrize("name", _FAST_SIMULATION)
def test_registry_simulation_agreement(name):
    assert_backends_agree(_CASES[name].build(), "simulation")


class TestPropertyAgreement:
    """Hypothesis cross-backend agreement (≥200 examples in total).

    The strategies always attach one-token self-loops (auto-concurrency
    bounds), and the default ``min_time=0`` draws zero-execution-time
    actors — including all-zero cycles, where both backends must agree
    the throughput is unbounded.  The simulation property needs
    ``min_time=1``: the state-space simulator rejects zero-time cycles
    by design, in both kernels alike (error agreement covers that).
    """

    @given(g=consistent_connected_sdf_graphs(
        max_actors=5, max_repetition=4, max_extra_edges=3,
        max_extra_tokens=2))
    @settings(max_examples=100, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    def test_symbolic_agreement(self, g):
        assert_backends_agree(g, "symbolic")

    @given(g=consistent_connected_sdf_graphs(
        max_actors=4, max_repetition=3, max_extra_edges=3,
        max_extra_tokens=1))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    def test_hsdf_agreement(self, g):
        assert_backends_agree(g, "hsdf")

    @given(g=consistent_connected_sdf_graphs(
        max_actors=4, max_repetition=3, max_extra_edges=2,
        min_time=1, max_extra_tokens=1))
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    def test_simulation_agreement(self, g):
        assert_backends_agree(g, "simulation")


def _zero_time_ring():
    from repro.sdf.graph import SDFGraph

    g = SDFGraph("zero-ring")
    for name in ("p", "q"):
        g.add_actor(name, execution_time=0)
        g.add_edge(name, name, tokens=1, name=f"self_{name}")
    g.add_edge("p", "q")
    g.add_edge("q", "p", tokens=1)
    return g


@pytest.mark.parametrize("method", ["symbolic", "hsdf"])
def test_zero_execution_time_cycle_agreement(method):
    """λ = 0 everywhere: both kernels must report unbounded throughput."""
    numpy_result, exact_result = assert_backends_agree(
        _zero_time_ring(), method
    )
    assert exact_result.unbounded
    assert numpy_result.unbounded


def test_pure_self_loop_agreement():
    """A single actor whose only cycle is its own self-loop."""
    from repro.sdf.graph import SDFGraph

    g = SDFGraph("lone")
    g.add_actor("a", execution_time=7)
    g.add_edge("a", "a", tokens=2, name="self_a")
    for method in ("symbolic", "simulation", "hsdf"):
        numpy_result, exact_result = assert_backends_agree(g, method)
        assert exact_result.cycle_time == Fraction(7, 2)
        assert numpy_result.cycle_time == Fraction(7, 2)


# ----------------------------------------------------------------------
# dense max-plus semiring vs the exact MaxPlusMatrix
# ----------------------------------------------------------------------

_entries = st.one_of(
    st.just(EPSILON),
    st.integers(min_value=-50, max_value=50),
    st.fractions(
        min_value=-50, max_value=50, max_denominator=8
    ).filter(lambda f: float(f) == f),  # exactly float-representable
)


def _matrices(side):
    return st.lists(
        st.lists(_entries, min_size=side, max_size=side),
        min_size=side, max_size=side,
    ).map(MaxPlusMatrix)


class TestDenseSemiringAgreement:
    @given(data=st.data(), side=st.integers(min_value=1, max_value=5))
    @settings(max_examples=80, deadline=None)
    def test_matmul_matches_reference(self, data, side):
        a = data.draw(_matrices(side))
        b = data.draw(_matrices(side))
        dense = mp_matmul(to_dense(a), to_dense(b))
        assert from_dense(dense).rows == a.multiply(b).rows

    @given(data=st.data(), side=st.integers(min_value=1, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_matvec_matches_reference(self, data, side):
        a = data.draw(_matrices(side))
        x = MaxPlusVector(
            data.draw(st.lists(_entries, min_size=side, max_size=side))
        )
        dense = mp_matvec(to_dense(a), to_dense_vector(x))
        assert from_dense_vector(dense).entries == a.apply(x).entries

    @given(data=st.data(), side=st.integers(min_value=1, max_value=4),
           exponent=st.integers(min_value=0, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_power_matches_reference(self, data, side, exponent):
        a = data.draw(_matrices(side))
        dense = mp_power(to_dense(a), exponent)
        assert from_dense(dense).rows == a.power(exponent).rows

    def test_all_epsilon_row_and_column(self):
        """ε rows/columns survive the product exactly (no NaN leaks)."""
        a = MaxPlusMatrix([
            [EPSILON, EPSILON, EPSILON],
            [3, EPSILON, Fraction(1, 2)],
            [EPSILON, 0, EPSILON],
        ])
        b = MaxPlusMatrix([
            [EPSILON, 5, EPSILON],
            [EPSILON, EPSILON, EPSILON],
            [7, -2, EPSILON],
        ])
        product = from_dense(mp_matmul(to_dense(a), to_dense(b)))
        assert product.rows == a.multiply(b).rows
        # row 0 of a is all-ε, column 2 of b is all-ε: both must stay ε.
        assert all(value == EPSILON for value in product.rows[0])
        assert all(row[2] == EPSILON for row in product.rows)
