"""Kernel selection across the batch/cache/resilience layers.

The kernel knob is pure *mechanism*: results are bit-identical either
way, so cache entries, journals and resumed batches are shared across
kernels.  These tests pin that contract where it could silently break —
the memoized cache, the process-pool payload and the journal/resume
round trip — plus the policy-level validation and provenance labels.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

pytest.importorskip("numpy")

from repro.analysis.batch import run_batch
from repro.analysis.cache import AnalysisCache
from repro.analysis.resilience import AnalysisPolicy, analyse_with_policy
from repro.sdf.graph import SDFGraph


def _graph(name: str, time_a: int) -> SDFGraph:
    g = SDFGraph(name)
    g.add_actor("a", execution_time=time_a)
    g.add_actor("b", execution_time=1)
    for actor in ("a", "b"):
        g.add_edge(actor, actor, tokens=1, name=f"self_{actor}")
    g.add_edge("a", "b", production=1, consumption=2)
    g.add_edge("b", "a", production=2, consumption=1, tokens=2)
    return g


GRAPHS = [_graph(f"kb-{i}", 2 + i) for i in range(4)]


class TestCacheSharingAcrossKernels:
    def test_numpy_then_exact_hits_the_same_entry(self):
        cache = AnalysisCache(maxsize=16)
        first = cache.throughput(GRAPHS[0], kernel="numpy")
        second = cache.throughput(GRAPHS[0], kernel="exact")
        assert second is first  # same memoized object: kernel not keyed
        stats = cache.stats()
        assert stats.hits >= 1

    def test_exact_then_numpy_agree_on_the_value(self):
        cache = AnalysisCache(maxsize=16)
        cold = cache.throughput(GRAPHS[1], kernel="exact")
        warm = cache.throughput(GRAPHS[1], kernel="numpy")
        assert warm is cold
        assert warm.cycle_time == Fraction(7)


class TestBatchKernels:
    def test_process_backend_runs_numpy_kernel(self):
        report = run_batch(
            GRAPHS, backend="process", workers=2,
            cache=AnalysisCache(maxsize=16), kernel="numpy",
        )
        assert all(r.ok for r in report.results)
        serial = run_batch(
            GRAPHS, backend="serial", cache=AnalysisCache(maxsize=16),
            kernel="exact",
        )
        for via_numpy, via_exact in zip(report.results, serial.results):
            assert (
                via_numpy.values["throughput"].cycle_time
                == via_exact.values["throughput"].cycle_time
            )

    def test_mixed_kernel_runs_share_one_cache(self):
        cache = AnalysisCache(maxsize=16)
        run_batch(GRAPHS[:2], backend="thread", cache=cache, kernel="numpy")
        before = cache.stats()
        report = run_batch(GRAPHS[:2], backend="thread", cache=cache,
                           kernel="exact")
        assert all(r.ok for r in report.results)
        assert cache.stats().hits - before.hits >= 2  # served, not recomputed

    def test_invalid_kernel_is_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            run_batch(GRAPHS[:1], backend="serial",
                      cache=AnalysisCache(maxsize=4), kernel="fast")


class TestJournalResumeAcrossKernels:
    def test_resume_with_switched_kernel(self, tmp_path):
        journal = tmp_path / "batch.jsonl"
        cache = AnalysisCache(maxsize=16)
        first = run_batch(
            GRAPHS, backend="thread", cache=cache,
            journal=journal, kernel="numpy",
        )
        assert all(r.ok for r in first.results)

        # Resuming under the other kernel replays every journaled
        # success — the journal records results, not kernels.
        resumed = run_batch(
            GRAPHS, backend="thread", cache=AnalysisCache(maxsize=16),
            journal=journal, resume=True, kernel="exact",
        )
        assert all(r.resumed for r in resumed.results)
        for fresh, replay in zip(first.results, resumed.results):
            summary = replay.values["throughput"]
            assert summary["cycle_time"] == str(
                fresh.values["throughput"].cycle_time
            )

    def test_partial_resume_computes_the_rest_with_new_kernel(self, tmp_path):
        journal = tmp_path / "partial.jsonl"
        run_batch(GRAPHS[:2], backend="serial",
                  cache=AnalysisCache(maxsize=16),
                  journal=journal, kernel="exact")
        report = run_batch(
            GRAPHS, backend="serial", cache=AnalysisCache(maxsize=16),
            journal=journal, resume=True, kernel="numpy",
        )
        assert [r.resumed for r in report.results] == [
            True, True, False, False,
        ]
        assert all(r.ok for r in report.results)
        fresh = report.results[2].values["throughput"]
        assert fresh.provenance.kernel == "numpy"


class TestPolicyKernels:
    def test_policy_validates_kernel(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            AnalysisPolicy(kernel="quantum")

    def test_policy_carries_kernel_into_provenance(self):
        outcome = analyse_with_policy(GRAPHS[0], kernel="numpy")
        assert outcome.status == "exact"
        assert outcome.record.kernel == "numpy"

    def test_policy_exact_kernel(self):
        outcome = analyse_with_policy(GRAPHS[0], kernel="exact")
        assert outcome.status == "exact"
        assert outcome.record.kernel == "exact"
