"""Automatic abstraction discovery for regular graphs."""

import pytest

from repro.core.conservativity import verify_abstraction
from repro.core.grouping import discover_abstraction
from repro.errors import NoAbstractionFoundError
from repro.graphs.synthetic import regular_prefetch, remote_memory_access
from repro.sdf.graph import SDFGraph


class TestNameStrategy:
    def test_prefetch_groups(self):
        ab = discover_abstraction(regular_prefetch(8))
        groups = ab.groups()
        assert set(groups) == {"A", "B"}
        assert len(groups["A"]) == 8 and len(groups["B"]) == 6

    def test_indices_follow_numeric_suffix(self):
        ab = discover_abstraction(regular_prefetch(6))
        assert [ab.index[f"A{i}"] for i in range(1, 7)] == list(range(6))

    def test_remote_memory_groups(self):
        ab = discover_abstraction(remote_memory_access(10))
        assert set(ab.groups()) == {"A", "CAl", "CAr"}

    def test_discovered_abstraction_is_conservative(self):
        g = regular_prefetch(10)
        cert = verify_abstraction(g, discover_abstraction(g))
        assert cert.conservative

    def test_actor_without_suffix_is_own_group(self):
        g = SDFGraph()
        g.add_actors("head", "w1", "w2")
        g.add_edge("head", "w1")
        g.add_edge("w1", "w2")
        g.add_edge("w2", "head", tokens=1)
        ab = discover_abstraction(g)
        assert ab.mapping["head"] == "head"
        assert ab.mapping["w1"] == ab.mapping["w2"] == "w"


class TestStructuralStrategy:
    def test_groups_by_signature(self):
        g = regular_prefetch(6)
        ab = discover_abstraction(g, strategy="structural")
        # Interior A's share a signature; so do interior B's.
        groups = [sorted(v) for v in ab.groups().values() if len(v) > 1]
        assert any({"A3", "A4"} <= set(members) for members in groups)
        cert = verify_abstraction(g, ab)
        assert cert.conservative

    def test_unknown_strategy_rejected(self, simple_ring):
        with pytest.raises(ValueError):
            discover_abstraction(simple_ring, strategy="magic")


class TestRepetitionSplit:
    def test_mixed_gamma_groups_are_split(self):
        g = SDFGraph()
        g.add_actors("x1", "x2")
        # x1 fires twice per firing of x2 — same stem, different γ.
        g.add_edge("x1", "x2", production=1, consumption=2)
        g.add_edge("x2", "x1", production=2, consumption=1, tokens=2)
        g.add_edge("x1", "x1", tokens=1, name="self_x1")
        with pytest.raises(NoAbstractionFoundError):
            discover_abstraction(g)


class TestIndexAssignment:
    def test_zero_delay_edges_respected_across_groups(self):
        # y1 → x2 zero-delay forces I(x2) > I(y1)=0 although x2 is the
        # "second" x; per-group ranking alone would violate the rule.
        g = SDFGraph()
        g.add_actors("x1", "x2", "y1")
        g.add_edge("x1", "y1")
        g.add_edge("y1", "x2")
        g.add_edge("x2", "x1", tokens=1)
        ab = discover_abstraction(g, min_group_size=2)
        assert ab.index["x1"] <= ab.index["y1"] <= ab.index["x2"]
        ab.validate(g)

    def test_zero_delay_cycle_rejected(self):
        g = SDFGraph()
        g.add_actors("x1", "x2")
        g.add_edge("x1", "x2")
        g.add_edge("x2", "x1")
        with pytest.raises(NoAbstractionFoundError, match="deadlock"):
            discover_abstraction(g)

    def test_no_group_large_enough(self, simple_ring):
        with pytest.raises(NoAbstractionFoundError, match="no group"):
            discover_abstraction(simple_ring)

    def test_min_group_size_tunable(self):
        g = regular_prefetch(6)
        ab = discover_abstraction(g, min_group_size=5)
        # B group (4 members) falls below the threshold: kept separate.
        assert ab.mapping["B1"] == "B1"
        assert ab.mapping["A1"] == "A"
