"""Lint output formats: text, versioned JSON, SARIF 2.1.0."""

import json

import pytest

from repro.analysis.cache import AnalysisCache
from repro.graphs.examples import figure3_graph
from repro.lint import render_json, render_sarif, render_text, run_lint, to_sarif
from repro.lint.formats import JSON_FORMAT_VERSION, SARIF_VERSION, TOOL_NAME
from repro.lint.registry import all_rules
from repro.sdf.graph import SDFGraph


@pytest.fixture
def reports():
    stuck = SDFGraph("stuck")
    stuck.add_actors("a", "b")
    stuck.add_edge("a", "b")
    stuck.add_edge("b", "a")
    cache = AnalysisCache()
    return [run_lint(figure3_graph(), cache=cache), run_lint(stuck, cache=cache)]


class TestText:
    def test_clean_and_dirty_blocks(self, reports):
        text = render_text(reports)
        assert "figure3: clean" in text
        assert "stuck: 1 error(s), 0 warning(s)" in text
        assert "[error] deadlock:" in text

    def test_fix_suggestions_are_indented_sublines(self):
        g = SDFGraph("loose")
        g.add_actor("src", 1)
        g.add_actor("dst", 1)
        g.add_edge("src", "dst")
        g.add_edge("dst", "dst", tokens=1)
        text = render_text([run_lint(g, cache=AnalysisCache())])
        assert "\n      fix: add a one-token self-edge" in text


class TestJson:
    def test_envelope(self, reports):
        payload = json.loads(render_json(reports))
        assert payload["version"] == JSON_FORMAT_VERSION
        assert payload["tool"]["name"] == TOOL_NAME
        assert payload["summary"] == {
            "graphs": 2,
            "findings": 1,
            "errors": 1,
            "warnings": 0,
        }
        clean, dirty = payload["runs"]
        assert clean["graph"] == "figure3" and clean["findings"] == []
        (finding,) = dirty["findings"]
        assert finding["code"] == "deadlock"
        assert finding["severity"] == "error"
        assert set(finding["actors"]) == {"a", "b"}
        assert finding["fingerprint"]

    def test_reports_carry_content_fingerprints(self, reports):
        payload = json.loads(render_json(reports))
        for run in payload["runs"]:
            assert run["fingerprint"].startswith("sdfg-")


class TestSarif:
    def test_log_shape(self, reports):
        log = json.loads(render_sarif(reports))
        assert log["version"] == SARIF_VERSION
        assert log["$schema"].endswith("sarif-2.1.0.json")
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == TOOL_NAME
        assert len(driver["rules"]) == len(all_rules())
        (result,) = run["results"]
        assert result["ruleId"] == "deadlock"
        assert result["level"] == "error"
        assert driver["rules"][result["ruleIndex"]]["id"] == "deadlock"

    def test_rules_carry_metadata(self, reports):
        (run,) = to_sarif(reports)["runs"]
        for entry in run["tool"]["driver"]["rules"]:
            assert entry["shortDescription"]["text"]
            assert entry["helpUri"].endswith(f"#{entry['id']}")
            assert entry["defaultConfiguration"]["level"] in (
                "error",
                "warning",
                "note",
            )

    def test_results_anchor_with_logical_locations(self, reports):
        (run,) = to_sarif(reports)["runs"]
        (result,) = run["results"]
        names = {
            loc["logicalLocations"][0]["fullyQualifiedName"]
            for loc in result["locations"]
        }
        assert names == {"stuck::a", "stuck::b"}

    def test_partial_fingerprints_are_stable(self, reports):
        first = to_sarif(reports)
        second = to_sarif(reports)
        fp = lambda log: [
            r["partialFingerprints"]["reproLint/v1"]
            for r in log["runs"][0]["results"]
        ]
        assert fp(first) == fp(second)
