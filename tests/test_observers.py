"""Observed firings in the compact conversion (the paper's 'output actor'
remark in Section 6)."""

from fractions import Fraction

import pytest

from repro.analysis.latency import latency
from repro.analysis.throughput import throughput
from repro.core.hsdf_conversion import convert_to_hsdf
from repro.core.symbolic import symbolic_iteration
from repro.errors import ValidationError
from repro.graphs.examples import figure3_graph, section41_example
from repro.maxplus.algebra import EPSILON


class TestObservers:
    def test_observer_actor_created(self):
        conv = convert_to_hsdf(figure3_graph(), observe=[("R", 0)])
        assert conv.observers == {"R#0": "obs_R#0"}
        assert conv.graph.has_actor("obs_R#0")
        assert conv.observer_actors >= 2  # sync + at least one coefficient

    def test_observer_latency_matches_original_firing(self):
        g = figure3_graph()
        conv = convert_to_hsdf(g, observe=[("R", 0), ("L", 1)])
        compact_latency = latency(conv.graph)
        original = latency(g)
        # R's first completion is 7, L's second is 6 (paper's stamps).
        assert compact_latency.of("obs_R#0") == original.last_completion["R"]
        assert compact_latency.of("obs_L#1") == Fraction(6)

    def test_observer_on_section41_output(self):
        g = section41_example()
        conv = convert_to_hsdf(g, observe=[("A6", 0)])
        assert latency(conv.graph).of("obs_A6#0") == 23

    def test_throughput_unchanged_by_observers(self):
        g = figure3_graph()
        plain = convert_to_hsdf(g)
        observed = convert_to_hsdf(g, observe=[("R", 0)])
        assert (
            throughput(plain.graph, method="hsdf").cycle_time
            == throughput(observed.graph, method="hsdf").cycle_time
        )

    def test_observer_coefficients_match_stamp(self):
        g = figure3_graph()
        iteration = symbolic_iteration(g)
        conv = convert_to_hsdf(g, iteration=iteration, observe=[("L", 0)])
        stamp = iteration.firing_completions[("L", 0)]
        for j, value in enumerate(stamp):
            name = f"obsg_L#0_{j}"
            if value == EPSILON:
                assert not conv.graph.has_actor(name)
            else:
                assert conv.graph.execution_time(name) == value

    def test_unknown_firing_rejected(self):
        with pytest.raises(ValidationError, match="no firing"):
            convert_to_hsdf(figure3_graph(), observe=[("L", 7)])
        with pytest.raises(ValidationError, match="no firing"):
            convert_to_hsdf(figure3_graph(), observe=[("ghost", 0)])

    def test_observer_forces_needed_demux(self):
        # Observing taps every token the firing depends on; their
        # demultiplexers must exist even where elision would remove them.
        g = figure3_graph()
        iteration = symbolic_iteration(g)
        conv = convert_to_hsdf(g, iteration=iteration, observe=[("R", 0)])
        stamp = iteration.firing_completions[("R", 0)]
        for j, value in enumerate(stamp):
            if value != EPSILON:
                assert conv.graph.has_actor(f"dmx_{j}")

    def test_simulated_observer_fires_periodically(self):
        g = figure3_graph()
        conv = convert_to_hsdf(g, observe=[("R", 0)])
        result = throughput(conv.graph, method="simulation")
        assert result.cycle_time == 7
