"""The overhauled ``repro lint`` subcommand: exit codes, formats,
selection, baselines and config files."""

import json

import pytest

from repro.cli import main
from repro.csdf.graph import CSDFGraph
from repro.csdf.io import to_json as csdf_to_json
from repro.graphs.examples import figure3_graph
from repro.sdf.graph import SDFGraph
from repro.sdf.io import to_json


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "fig3.json"
    path.write_text(to_json(figure3_graph()))
    return str(path)


@pytest.fixture
def warn_file(tmp_path):
    g = SDFGraph("loose")
    g.add_actor("src", 1)
    g.add_actor("dst", 1)
    g.add_edge("src", "dst")
    g.add_edge("dst", "dst", tokens=1)
    path = tmp_path / "loose.json"
    path.write_text(to_json(g))
    return str(path)


@pytest.fixture
def error_file(tmp_path):
    g = SDFGraph("stuck")
    g.add_actors("a", "b")
    g.add_edge("a", "b")
    g.add_edge("b", "a")
    path = tmp_path / "stuck.json"
    path.write_text(to_json(g))
    return str(path)


class TestExitCodes:
    def test_clean_is_zero(self, clean_file, capsys):
        assert main(["lint", clean_file]) == 0
        assert "clean" in capsys.readouterr().out

    def test_warnings_only_is_zero_by_default(self, warn_file, capsys):
        assert main(["lint", warn_file]) == 0
        assert "unbounded-actor" in capsys.readouterr().out

    def test_warnings_gate_under_fail_on_warning(self, warn_file):
        assert main(["lint", warn_file, "--fail-on", "warning"]) == 1

    def test_errors_are_two(self, error_file):
        assert main(["lint", error_file]) == 2

    def test_fail_on_never_reports_but_passes(self, error_file, capsys):
        assert main(["lint", error_file, "--fail-on", "never"]) == 0
        assert "deadlock" in capsys.readouterr().out

    def test_no_graphs_is_usage_error(self, capsys):
        assert main(["lint"]) == 2
        assert "no graphs" in capsys.readouterr().err


class TestSelection:
    def test_select(self, warn_file, capsys):
        assert main(["lint", warn_file, "--select", "disconnected"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_ignore(self, warn_file, capsys):
        assert (
            main(
                [
                    "lint",
                    warn_file,
                    "--ignore",
                    "unbounded-actor",
                    "--fail-on",
                    "warning",
                ]
            )
            == 0
        )

    def test_unknown_code_is_rejected(self, warn_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", warn_file, "--select", "no-such-code"])
        assert excinfo.value.code == 2
        assert "unknown rule code" in capsys.readouterr().err


class TestFormats:
    def test_json(self, error_file, capsys):
        assert main(["lint", error_file, "--format", "json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 1
        assert payload["runs"][0]["findings"][0]["code"] == "deadlock"

    def test_sarif(self, error_file, capsys):
        assert main(["lint", error_file, "--format", "sarif"]) == 2
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"][0]["ruleId"] == "deadlock"

    def test_output_file(self, error_file, tmp_path, capsys):
        out = tmp_path / "report.sarif"
        assert (
            main(["lint", error_file, "--format", "sarif", "-o", str(out)]) == 2
        )
        assert json.loads(out.read_text())["version"] == "2.1.0"


class TestRegistry:
    def test_registry_has_no_errors(self, capsys):
        assert main(["lint", "--registry", "--fail-on", "error"]) == 0

    def test_registry_combines_with_specs(self, error_file):
        assert main(["lint", "--registry", error_file]) == 2

    def test_builtin_specs_work(self, capsys):
        assert main(["lint", "builtin:figure3"]) == 0


class TestBaseline:
    def test_roundtrip_suppresses_known_findings(self, warn_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert (
            main(["lint", warn_file, "--write-baseline", str(baseline)]) == 0
        )
        recorded = json.loads(baseline.read_text())
        assert recorded["findings"][0]["code"] == "unbounded-actor"
        capsys.readouterr()
        assert (
            main(
                [
                    "lint",
                    warn_file,
                    "--baseline",
                    str(baseline),
                    "--fail-on",
                    "warning",
                ]
            )
            == 0
        )
        assert "clean" in capsys.readouterr().out

    def test_new_findings_still_gate(self, warn_file, error_file, tmp_path):
        baseline = tmp_path / "baseline.json"
        main(["lint", warn_file, "--write-baseline", str(baseline)])
        assert (
            main(["lint", warn_file, error_file, "--baseline", str(baseline)])
            == 2
        )


class TestConfigFile:
    def test_config_severity_override(self, warn_file, tmp_path):
        config = tmp_path / "lint.json"
        config.write_text(json.dumps({"severity": {"unbounded-actor": "error"}}))
        assert main(["lint", warn_file, "--config", str(config)]) == 2

    def test_config_ignore_with_cli_select_override(self, warn_file, tmp_path):
        config = tmp_path / "lint.json"
        config.write_text(json.dumps({"ignore": ["unbounded-actor"]}))
        assert (
            main(
                [
                    "lint",
                    warn_file,
                    "--config",
                    str(config),
                    "--fail-on",
                    "warning",
                ]
            )
            == 0
        )

    def test_invalid_config_is_clean_error(self, warn_file, tmp_path, capsys):
        config = tmp_path / "lint.json"
        config.write_text(json.dumps({"bogus": 1}))
        assert main(["lint", warn_file, "--config", str(config)]) == 1
        assert "unknown keys" in capsys.readouterr().err


class TestCSDF:
    def test_clean_csdf(self, tmp_path, capsys):
        g = CSDFGraph("updown")
        g.add_actor("P", [1, 2])
        g.add_actor("C", [4])
        g.add_edge("P", "C", production=[2, 1], consumption=[3])
        g.add_edge("C", "P", production=[3], consumption=[2, 1], tokens=3)
        path = tmp_path / "updown.json"
        path.write_text(csdf_to_json(g))
        assert main(["lint", "--csdf", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_inconsistent_csdf(self, tmp_path, capsys):
        g = CSDFGraph("bad")
        g.add_actor("a", [1])
        g.add_actor("b", [1])
        g.add_edge("a", "b", production=[1], consumption=[1])
        g.add_edge("b", "a", production=[1], consumption=[2], tokens=2)
        path = tmp_path / "bad.json"
        path.write_text(csdf_to_json(g))
        assert main(["lint", "--csdf", str(path)]) == 2
        assert "csdf-inconsistent" in capsys.readouterr().out
