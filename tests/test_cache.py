"""The content-addressed analysis cache: fingerprints, LRU, threads."""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import consistent_connected_sdf_graphs, shuffled_clones

from repro.analysis.cache import AnalysisCache, default_cache, set_default_cache
from repro.analysis.throughput import throughput
from repro.errors import ValidationError
from repro.sdf.graph import SDFGraph


def two_actor(name="g") -> SDFGraph:
    g = SDFGraph(name)
    g.add_actor("A", 3)
    g.add_actor("B", 1)
    g.add_edge("A", "B", production=1, consumption=2, tokens=0, name="ab")
    g.add_edge("B", "A", production=2, consumption=1, tokens=2, name="ba")
    return g


class TestFingerprint:
    def test_stable_across_calls(self):
        g = two_actor()
        assert g.fingerprint() == g.fingerprint()

    def test_memoized_until_mutation(self):
        g = two_actor()
        first = g.fingerprint()
        assert g._fingerprint is not None  # cached
        g.add_actor("C", 1)
        assert g._fingerprint is None  # invalidated
        assert g.fingerprint() != first

    def test_actor_insertion_order_irrelevant(self):
        a = SDFGraph("x")
        a.add_actor("A", 1)
        a.add_actor("B", 2)
        b = SDFGraph("x")
        b.add_actor("B", 2)
        b.add_actor("A", 1)
        assert a.fingerprint() == b.fingerprint()

    def test_edge_insertion_order_irrelevant(self):
        a = two_actor()
        b = SDFGraph("g")
        b.add_actor("A", 3)
        b.add_actor("B", 1)
        b.add_edge("B", "A", production=2, consumption=1, tokens=2, name="ba")
        b.add_edge("A", "B", production=1, consumption=2, tokens=0, name="ab")
        assert a.fingerprint() == b.fingerprint()

    def test_display_name_excluded(self):
        assert two_actor("one").fingerprint() == two_actor("two").fingerprint()

    def test_copy_shares_fingerprint(self):
        g = two_actor()
        assert g.copy("renamed").fingerprint() == g.fingerprint()

    @given(g=consistent_connected_sdf_graphs(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_shuffled_rebuild_shares_fingerprint(self, g, data):
        clone = data.draw(shuffled_clones(g))
        assert clone.fingerprint() == g.fingerprint()

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda g: g.add_actor("C", 1),
            lambda g: g.add_actors("C", "D", execution_time=2),
            lambda g: g.add_edge("A", "B", tokens=1),
            lambda g: g.remove_edge("ab"),
            lambda g: g.set_execution_time("A", 7),
            lambda g: g.set_tokens("ba", 9),
            lambda g: g.set_rates("ab", 3, 4),
        ],
        ids=[
            "add_actor",
            "add_actors",
            "add_edge",
            "remove_edge",
            "set_execution_time",
            "set_tokens",
            "set_rates",
        ],
    )
    def test_every_mutator_invalidates(self, mutate):
        g = two_actor()
        before = g.fingerprint()
        mutate(g)
        assert g.fingerprint() != before

    def test_mutation_roundtrip_restores_fingerprint(self):
        """Content addressing: undoing a mutation restores the hash."""
        g = two_actor()
        before = g.fingerprint()
        g.set_tokens("ba", 5)
        assert g.fingerprint() != before
        g.set_tokens("ba", 2)
        assert g.fingerprint() == before

    def test_rates_and_times_distinguished(self):
        """p/c swaps and time changes must not collide."""
        a = SDFGraph("x")
        a.add_actor("A", 1)
        a.add_actor("B", 1)
        a.add_edge("A", "B", production=2, consumption=3, name="e")
        b = SDFGraph("x")
        b.add_actor("A", 1)
        b.add_actor("B", 1)
        b.add_edge("A", "B", production=3, consumption=2, name="e")
        assert a.fingerprint() != b.fingerprint()
        c = two_actor()
        d = two_actor()
        d.set_execution_time("A", Fraction(7, 2))
        assert c.fingerprint() != d.fingerprint()

    def test_versioned_format(self):
        assert two_actor().fingerprint().startswith("sdfg-v1:")


class TestLRU:
    def graphs(self, count):
        out = []
        for i in range(count):
            g = two_actor(f"g{i}")
            g.set_execution_time("A", i + 1)  # distinct fingerprints
            out.append(g)
        return out

    def test_eviction_bound(self):
        cache = AnalysisCache(maxsize=4)
        for g in self.graphs(10):
            cache.repetition_vector(g)
        assert len(cache) == 4
        assert cache.stats().evictions == 6

    def test_lru_order(self):
        cache = AnalysisCache(maxsize=2)
        a, b, c = self.graphs(3)
        cache.repetition_vector(a)
        cache.repetition_vector(b)
        cache.repetition_vector(a)  # refresh a: b is now the LRU victim
        cache.repetition_vector(c)
        stats = cache.stats()
        cache.repetition_vector(a)
        assert cache.stats().hits == stats.hits + 1  # a survived
        cache.repetition_vector(b)
        assert cache.stats().misses == stats.misses + 1  # b was evicted

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            AnalysisCache(maxsize=0)

    def test_clear_keeps_counters(self):
        cache = AnalysisCache(maxsize=8)
        g = two_actor()
        cache.repetition_vector(g)
        cache.repetition_vector(g)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1
        cache.reset_stats()
        assert cache.stats().lookups == 0


class TestSemantics:
    def test_repetition_copy_is_defensive(self):
        cache = AnalysisCache()
        g = two_actor()
        first = cache.repetition_vector(g)
        first["A"] = 999
        assert cache.repetition_vector(g)["A"] == 2

    def test_params_distinguish_entries(self):
        cache = AnalysisCache()
        g = two_actor()
        cache.throughput(g, method="symbolic")
        cache.throughput(g, method="hsdf")
        assert cache.stats().misses == 2
        cache.throughput(g, method="symbolic")
        assert cache.stats().hits == 1

    def test_store_then_lookup(self):
        cache = AnalysisCache()
        g = two_actor()
        value = throughput(g)
        cache.store(g, "throughput", value, params={"method": "symbolic"})
        assert cache.lookup(g, "throughput", {"method": "symbolic"}) is value
        assert cache.lookup(g, "throughput", {"method": "hsdf"}) is None

    def test_error_not_cached(self):
        cache = AnalysisCache()
        g = two_actor()
        calls = []

        def boom():
            calls.append(1)
            raise ValidationError("nope")

        for _ in range(2):
            with pytest.raises(ValidationError):
                cache.get_or_compute(g, "custom", boom)
        assert len(calls) == 2  # failures are retried, never cached
        assert cache.get_or_compute(g, "custom", lambda: 42) == 42

    def test_default_cache_swap(self):
        replacement = AnalysisCache(maxsize=2)
        previous = set_default_cache(replacement)
        try:
            assert default_cache() is replacement
        finally:
            set_default_cache(previous)
        assert default_cache() is previous


class TestThreadSafety:
    def test_concurrent_lookups_consistent(self):
        cache = AnalysisCache(maxsize=64)
        graphs = [g for g in TestLRU().graphs(8)]
        expected = {g.name: throughput(g).cycle_time for g in graphs}

        def worker(seed):
            out = {}
            for g in (graphs * 5)[seed:] + (graphs * 5)[:seed]:
                out[g.name] = cache.throughput(g).cycle_time
            return out

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(worker, range(8)))
        for result in results:
            assert result == expected
        stats = cache.stats()
        # Single-flight: each distinct graph computed exactly once.
        assert stats.misses == len(graphs)
        assert stats.hits + stats.coalesced == 8 * 5 * len(graphs) - stats.misses

    def test_single_flight_coalesces_concurrent_misses(self):
        cache = AnalysisCache()
        g = two_actor()
        calls = []
        started = threading.Barrier(4)

        def slow():
            calls.append(1)
            time.sleep(0.05)
            return "value"

        def worker():
            started.wait()
            return cache.get_or_compute(g, "slow", slow)

        with ThreadPoolExecutor(max_workers=4) as pool:
            results = [pool.submit(worker) for _ in range(4)]
            assert {f.result() for f in results} == {"value"}
        assert len(calls) == 1
        stats = cache.stats()
        assert stats.misses == 1
        # The stragglers either coalesced onto the in-flight compute or
        # (if descheduled past it) hit the stored entry; never recompute.
        assert stats.coalesced + stats.hits == 3


class TestErrorAccounting:
    """Satellite of the resilience PR: failed computes are observable and
    never poison the single-flight machinery."""

    def test_errors_counted_in_stats(self):
        cache = AnalysisCache()
        g = two_actor()
        with pytest.raises(ValidationError):
            cache.get_or_compute(g, "custom", lambda: (_ for _ in ()).throw(
                ValidationError("nope")))
        stats = cache.stats()
        assert stats.errors == 1
        assert "errors" in stats.as_dict()
        cache.reset_stats()
        assert cache.stats().errors == 0

    def test_failed_leader_does_not_poison_followers(self):
        """A compute that raises must not wedge concurrent waiters or
        leave a stale in-flight entry: every follower either recomputes
        successfully or fails with the *fresh* error, and a later call
        succeeds."""
        cache = AnalysisCache()
        g = two_actor()
        started = threading.Barrier(4)
        fail_first = threading.Event()

        def compute():
            if not fail_first.is_set():
                fail_first.set()
                time.sleep(0.02)  # let followers pile onto the flight
                raise ValidationError("leader failed")
            return "recovered"

        def worker():
            started.wait()
            try:
                return cache.get_or_compute(g, "flaky", compute)
            except ValidationError:
                return "error"

        with ThreadPoolExecutor(max_workers=4) as pool:
            results = [f.result() for f in
                       [pool.submit(worker) for _ in range(4)]]
        # At least the leader saw the error; nobody hung; at least one
        # follower recovered by recomputing after the leader's failure.
        assert "error" in results
        assert "recovered" in results
        assert set(results) <= {"error", "recovered"}
        # The in-flight table is clean: a fresh call computes normally.
        assert cache.get_or_compute(g, "flaky", lambda: "clean") == "recovered" \
            or cache.lookup(g, "flaky") == "recovered"
        assert cache.stats().errors >= 1

    def test_interrupted_compute_not_cached(self):
        from repro.analysis.deadline import Deadline
        from repro.errors import AnalysisTimeout

        cache = AnalysisCache()
        g = two_actor()

        def timed_out():
            Deadline.after(0.0).check_now()
            raise AssertionError("unreachable")

        with pytest.raises(AnalysisTimeout):
            cache.get_or_compute(g, "slowthing", timed_out)
        assert cache.lookup(g, "slowthing") is None
        assert cache.stats().errors == 1
        assert cache.get_or_compute(g, "slowthing", lambda: 7) == 7


class TestStatsSnapshotConsistency:
    """CacheStats snapshots stay internally consistent under fire.

    ``AnalysisCache.stats()`` reads every counter in one critical
    section, so a snapshot taken mid-hammering must satisfy the cache's
    invariants *exactly* — not just eventually (the promise made in the
    :class:`CacheStats` docstring).
    """

    @staticmethod
    def _distinct_graphs(count):
        graphs = []
        for i in range(count):
            g = SDFGraph(f"g{i}")
            g.add_actor("A", i + 1)  # fingerprints are structural
            g.add_actor("B", 1)
            g.add_edge("A", "B", production=1, consumption=2, tokens=0)
            g.add_edge("B", "A", production=2, consumption=1, tokens=2)
            graphs.append(g)
        return graphs

    def test_concurrent_snapshots_always_consistent(self):
        cache = AnalysisCache(maxsize=8)
        graphs = self._distinct_graphs(12)  # > maxsize: forces evictions
        threads, iterations = 8, 150
        stop = threading.Event()
        violations = []

        def writer(index):
            for i in range(iterations):
                g = graphs[(index * 31 + i) % len(graphs)]
                cache.get_or_compute(g, "t", lambda: index)

        def reader():
            prev = cache.stats()
            while not stop.is_set():
                s = cache.stats()
                if s.size > s.maxsize:
                    violations.append(f"size {s.size} > maxsize {s.maxsize}")
                if s.lookups != s.hits + s.misses:
                    violations.append("lookups != hits + misses")
                for field in ("hits", "misses", "evictions",
                              "coalesced", "errors"):
                    if getattr(s, field) < getattr(prev, field):
                        violations.append(f"{field} went backwards")
                prev = s

        observer = threading.Thread(target=reader)
        observer.start()
        with ThreadPoolExecutor(max_workers=threads) as pool:
            futures = [pool.submit(writer, t) for t in range(threads)]
            for f in futures:
                f.result()
        stop.set()
        observer.join()

        assert not violations, violations[:5]
        final = cache.stats()
        # Every call was classified exactly once (no failing computes,
        # so no retry loops double-count).
        assert (final.hits + final.misses + final.coalesced
                == threads * iterations)
        assert final.evictions > 0, "12 keys through maxsize=8 must evict"
        assert final.errors == 0
        assert final.size <= final.maxsize


class TestDiskTierStats:
    """The disk-tier counters added with the durable result store.

    Deep two-tier behaviour lives in ``tests/test_store.py``; here we
    pin the accounting surface: snapshot fields, invariants under
    concurrency, and the metrics-registry export.
    """

    def test_snapshot_has_disk_fields_zero_without_store(self):
        cache = AnalysisCache(maxsize=4)
        stats = cache.stats()
        for field in ("disk_hits", "disk_misses", "disk_quarantined",
                      "disk_errors", "disk_puts"):
            assert getattr(stats, field) == 0
            assert stats.as_dict()[field] == 0

    def test_disk_invariants_under_concurrent_storms(self, tmp_path):
        from repro.analysis.store import ResultStore

        cache = AnalysisCache(maxsize=4, store=ResultStore(tmp_path))
        graphs = TestStatsSnapshotConsistency._distinct_graphs(8)

        def worker(index):
            for i in range(40):
                g = graphs[(index * 13 + i) % len(graphs)]
                cache.get_or_compute(g, "t", lambda: index)

        with ThreadPoolExecutor(max_workers=6) as pool:
            for future in [pool.submit(worker, t) for t in range(6)]:
                future.result()

        stats = cache.stats()
        # Only a miss's leader probes the disk: one probe per storm.
        assert stats.disk_hits + stats.disk_misses <= stats.misses
        assert stats.disk_quarantined <= stats.disk_misses
        assert stats.disk_errors <= stats.disk_misses
        assert stats.disk_puts <= stats.disk_misses

    def test_register_metrics_exports_disk_counters(self, tmp_path):
        from repro.analysis.store import ResultStore
        from repro.obs.metrics import MetricsRegistry

        store = ResultStore(tmp_path)
        cache = AnalysisCache(maxsize=4, store=store)
        g = TestStatsSnapshotConsistency._distinct_graphs(1)[0]
        cache.get_or_compute(g, "t", lambda: 1)          # miss + publish
        AnalysisCache(maxsize=4, store=store).get_or_compute(
            g, "t", lambda: 2)  # the warm cache never reaches compute

        registry = MetricsRegistry()
        cache.register_metrics(registry)
        doc = registry.as_dict()  # the export pulls the collector
        exported = {
            metric["name"]: metric["samples"][0]["value"]
            for metric in doc["metrics"] if metric["samples"]
        }
        assert exported["repro_cache_disk_misses_total"] == 1
        assert exported["repro_cache_disk_puts_total"] == 1
        assert exported.get("repro_cache_disk_hits_total", 0) == 0
        assert exported.get("repro_cache_disk_quarantined_total", 0) == 0
