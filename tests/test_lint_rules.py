"""Every built-in lint rule: one triggering and one clean fixture."""

import pytest

from repro.csdf.graph import CSDFEdge, CSDFGraph
from repro.graphs.examples import figure3_graph
from repro.lint import LintConfig, lint_csdf, lint_scenarios, run_lint
from repro.lint.rules import check_abstraction_safety, zero_time_token_cycle
from repro.scenarios.model import Scenario, ScenarioFSM
from repro.sdf.graph import SDFGraph


def codes(report):
    return set(report.codes())


def lint(graph, **options):
    if options:
        return run_lint(graph, options=options)
    return run_lint(graph)


def ring(tokens_ab=1, tokens_ba=1, t_a=1, t_b=1) -> SDFGraph:
    g = SDFGraph("ring")
    g.add_actor("a", t_a)
    g.add_actor("b", t_b)
    g.add_edge("a", "b", tokens=tokens_ab, name="ab")
    g.add_edge("b", "a", tokens=tokens_ba, name="ba")
    return g


# ---------------------------------------------------------------------------
# SDF · structural
# ---------------------------------------------------------------------------


class TestEmpty:
    def test_fires(self):
        report = lint(SDFGraph())
        assert codes(report) == {"empty"}
        assert report.ok  # warning only

    def test_clean(self):
        assert "empty" not in codes(lint(ring()))


class TestDisconnected:
    def test_fires(self):
        g = SDFGraph()
        g.add_actor("a", 1)
        g.add_actor("b", 1)
        g.add_edge("a", "a", tokens=1)
        g.add_edge("b", "b", tokens=1)
        report = lint(g)
        (finding,) = report.by_code("disconnected")
        assert finding.data["components"] == 2

    def test_clean(self):
        assert "disconnected" not in codes(lint(ring()))


class TestUnboundedActor:
    def test_fires(self):
        g = SDFGraph()
        g.add_actor("src", 1)
        g.add_actor("dst", 1)
        g.add_edge("src", "dst")
        g.add_edge("dst", "dst", tokens=1)
        (finding,) = lint(g).by_code("unbounded-actor")
        assert finding.actors == ("src",)
        assert finding.fix  # actionable: add a self-loop

    def test_clean(self):
        assert "unbounded-actor" not in codes(lint(ring()))


class TestSelfLoopMissingToken:
    def test_fires(self):
        g = SDFGraph()
        g.add_actor("a", 1)
        g.add_edge("a", "a", production=2, consumption=2, tokens=1, name="spin")
        report = lint(g)
        (finding,) = report.by_code("self-loop-missing-token")
        assert finding.severity == "error"
        assert finding.edges == ("spin",)
        assert finding.data == {"tokens": 1, "consumption": 2}
        assert not report.ok

    def test_clean_with_enough_tokens(self):
        g = SDFGraph()
        g.add_actor("a", 1)
        g.add_edge("a", "a", production=2, consumption=2, tokens=2)
        assert "self-loop-missing-token" not in codes(lint(g))


class TestParallelRedundantEdge:
    def test_fires(self):
        g = ring()
        g.add_edge("a", "b", tokens=5, name="slack")
        (finding,) = lint(g).by_code("parallel-redundant-edge")
        assert finding.data == {"redundant": "slack", "binding": "ab"}

    def test_distinct_rates_are_not_parallel(self):
        g = ring()
        g.add_edge("a", "b", production=2, consumption=2, tokens=4)
        assert "parallel-redundant-edge" not in codes(lint(g))


# ---------------------------------------------------------------------------
# SDF · rate
# ---------------------------------------------------------------------------


class TestInconsistent:
    def test_fires(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b", production=2, consumption=1)
        g.add_edge("b", "a", production=1, consumption=1)
        report = lint(g)
        assert not report.ok
        (finding,) = report.by_code("inconsistent")
        assert finding.severity == "error"

    def test_rate_independent_rules_still_run(self):
        g = SDFGraph()
        g.add_actors("a", "b", "src")
        g.add_edge("a", "b", production=2, consumption=1)
        g.add_edge("b", "a", production=1, consumption=1)
        g.add_edge("src", "a")
        assert {"inconsistent", "unbounded-actor"} <= codes(lint(g))

    def test_clean(self):
        assert "inconsistent" not in codes(lint(figure3_graph()))


class TestRateGcdReducible:
    def test_fires(self):
        g = SDFGraph()
        g.add_actor("a", 1)
        g.add_edge("a", "a", production=2, consumption=2, tokens=2, name="fat")
        (finding,) = lint(g).by_code("rate-gcd-reducible")
        assert finding.data["gcd"] == 2
        assert finding.edges == ("fat",)

    def test_coprime_rates_clean(self):
        g = SDFGraph()
        g.add_actor("a", 1)
        g.add_edge("a", "a", production=3, consumption=3, tokens=4)
        assert "rate-gcd-reducible" not in codes(lint(g))


class TestUnreadTokens:
    def test_fires(self):
        g = SDFGraph()
        g.add_actor("a", 1)
        g.add_edge("a", "a", tokens=5)
        (finding,) = lint(g).by_code("unread-tokens")
        assert finding.data["consumed_per_iteration"] == 1

    def test_skipped_on_inconsistent_graph(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b", production=2, consumption=1, tokens=50)
        g.add_edge("b", "a", production=1, consumption=1)
        assert "unread-tokens" not in codes(lint(g))

    def test_clean(self):
        assert "unread-tokens" not in codes(lint(figure3_graph()))


class TestUnfoldingBlowup:
    def test_fires_under_tight_budget(self):
        from repro.sdf.repetition import repetition_vector

        g = figure3_graph()
        report = lint(g, unfold_budget=2)
        (finding,) = report.by_code("unfolding-blowup")
        assert finding.data["iteration_length"] == sum(
            repetition_vector(g).values()
        )
        tokens = g.total_tokens()
        assert finding.data["symbolic_bound"] == tokens * (tokens + 2)

    def test_clean_under_default_budget(self):
        assert "unfolding-blowup" not in codes(lint(figure3_graph()))


class TestAbstractionUnsafeGroup:
    def graph(self):
        # a, b, c in a homogeneous ring: γ = (1, 1, 1).
        g = SDFGraph("trio")
        for name in "abc":
            g.add_actor(name, 1)
        g.add_edge("a", "b", name="ab")
        g.add_edge("b", "c", name="bc")
        g.add_edge("c", "a", tokens=1, name="ca")
        return g

    def conditions(self, graph, mapping, index):
        report = run_lint(
            graph, options={"abstraction": {"mapping": mapping, "index": index}}
        )
        return [f.data["condition"] for f in report.by_code("abstraction-unsafe-group")]

    def test_safe_proposal_is_clean(self):
        mapping = {"a": "g", "b": "g", "c": "g"}
        index = {"a": 0, "b": 1, "c": 2}
        assert self.conditions(self.graph(), mapping, index) == []

    def test_coverage(self):
        mapping = {"a": "g", "b": "g"}
        index = {"a": 0, "b": 1}
        assert self.conditions(self.graph(), mapping, index) == ["coverage"]

    def test_index_type(self):
        mapping = {"a": "g", "b": "g", "c": "g"}
        index = {"a": 0, "b": "one", "c": 2}
        assert self.conditions(self.graph(), mapping, index) == ["index-type"]

    def test_equal_repetition(self):
        # L fires 2x, R fires 3x in figure 3: grouping them violates
        # the Definition 3 equal-repetition precondition.
        mapping = {"L": "g", "R": "g"}
        index = {"L": 0, "R": 1}
        conditions = self.conditions(figure3_graph(), mapping, index)
        assert "equal-repetition" in conditions

    def test_injective_index(self):
        mapping = {"a": "g", "b": "g", "c": "g"}
        index = {"a": 0, "b": 0, "c": 1}
        assert "injective-index" in self.conditions(self.graph(), mapping, index)

    def test_zero_delay_order(self):
        mapping = {"a": "g", "b": "g", "c": "g"}
        index = {"a": 1, "b": 0, "c": 2}  # zero-delay ab goes 1 -> 0
        assert "zero-delay-order" in self.conditions(self.graph(), mapping, index)

    def test_not_run_without_a_proposal(self):
        assert "abstraction-unsafe-group" not in codes(lint(self.graph()))

    def test_check_abstraction_safety_helper(self):
        mapping = {"a": "g", "b": "g", "c": "g"}
        diagnostics = check_abstraction_safety(
            self.graph(), {"mapping": mapping, "index": {"a": 0, "b": 0, "c": 1}}
        )
        assert [d.code for d in diagnostics] == ["abstraction-unsafe-group"]


# ---------------------------------------------------------------------------
# SDF · temporal
# ---------------------------------------------------------------------------


class TestDeadlock:
    def test_fires(self):
        report = lint(ring(tokens_ab=0, tokens_ba=0))
        (finding,) = report.by_code("deadlock")
        assert finding.severity == "error"
        assert set(finding.data["blocked"]) == {"a", "b"}

    def test_clean(self):
        assert "deadlock" not in codes(lint(ring()))


class TestZeroTimeCycle:
    def test_fires_on_self_loop(self):
        g = SDFGraph()
        g.add_actor("z", 0)
        g.add_edge("z", "z", tokens=1)
        assert "zero-time-cycle" in codes(lint(g))

    def test_fires_on_two_actor_token_cycle(self):
        # Regression: the helper must find multi-actor zero-time cycles,
        # not just self-loops (and its RatioGraph dependency is a
        # module-level import, so this path cannot fail lazily).
        g = ring(t_a=0, t_b=0)
        cycle = zero_time_token_cycle(g)
        assert cycle is not None and set(cycle) == {"a", "b"}
        (finding,) = lint(g).by_code("zero-time-cycle")
        assert set(finding.actors) == {"a", "b"}

    def test_clean_when_one_actor_is_timed(self):
        assert zero_time_token_cycle(ring(t_a=0, t_b=1)) is None
        assert "zero-time-cycle" not in codes(lint(ring(t_a=0, t_b=1)))

    def test_clean_when_cycle_has_no_tokens(self):
        g = SDFGraph()
        g.add_actor("z", 0)
        g.add_actor("a", 3)
        g.add_edge("a", "a", tokens=1)
        g.add_edge("a", "z")
        assert "zero-time-cycle" not in codes(lint(g))


# ---------------------------------------------------------------------------
# CSDF
# ---------------------------------------------------------------------------


def csdf_ring() -> CSDFGraph:
    g = CSDFGraph("csdf-ring")
    g.add_actor("P", [1, 2])
    g.add_actor("C", [4])
    g.add_edge("P", "C", production=[2, 1], consumption=[3], name="data")
    g.add_edge("C", "P", production=[3], consumption=[2, 1], tokens=3, name="space")
    return g


class TestCSDFInconsistent:
    def test_fires(self):
        g = CSDFGraph()
        g.add_actor("a", [1])
        g.add_actor("b", [1])
        g.add_edge("a", "b", production=[1], consumption=[1])
        g.add_edge("b", "a", production=[1], consumption=[2], tokens=2)
        report = lint_csdf(g)
        assert "csdf-inconsistent" in set(report.codes())
        assert not report.ok

    def test_clean(self):
        assert "csdf-inconsistent" not in set(lint_csdf(csdf_ring()).codes())


class TestCSDFPhaseMismatch:
    def test_length_mismatch_is_error(self):
        # The builder refuses mismatched sequences, so break the
        # invariant directly — models loaded from foreign formats can.
        g = csdf_ring()
        bad = CSDFEdge("bad", "P", "C", production=(1,), consumption=(1,))
        g._edges["bad"] = bad
        g._out["P"].append("bad")
        g._in["C"].append("bad")
        report = lint_csdf(g)
        lengths = [
            f for f in report.by_code("csdf-phase-mismatch")
            if f.data["kind"] == "length"
        ]
        assert lengths and all(f.severity == "error" for f in lengths)

    def test_periodic_phases_warn(self):
        g = CSDFGraph()
        g.add_actor("a", [1, 1])
        g.add_actor("b", [1])
        g.add_edge("a", "b", production=[2, 2], consumption=[4], tokens=4)
        g.add_edge("b", "a", production=[4], consumption=[2, 2], tokens=4)
        report = lint_csdf(g)
        (finding,) = report.by_code("csdf-phase-mismatch")
        assert finding.data == {"kind": "periodic", "phases": 2, "period": 1}
        assert finding.severity == "warning"

    def test_genuinely_cyclostatic_actor_is_clean(self):
        assert "csdf-phase-mismatch" not in set(lint_csdf(csdf_ring()).codes())


class TestCSDFDeadlock:
    def test_fires(self):
        g = CSDFGraph()
        g.add_actor("a", [1])
        g.add_actor("b", [1])
        g.add_edge("a", "b", production=[1], consumption=[1])
        g.add_edge("b", "a", production=[1], consumption=[1])
        report = lint_csdf(g)
        assert "csdf-deadlock" in set(report.codes())

    def test_skipped_when_inconsistent(self):
        g = CSDFGraph()
        g.add_actor("a", [1])
        g.add_actor("b", [1])
        g.add_edge("a", "b", production=[1], consumption=[1])
        g.add_edge("b", "a", production=[1], consumption=[2])
        assert "csdf-deadlock" not in set(lint_csdf(g).codes())

    def test_clean(self):
        assert "csdf-deadlock" not in set(lint_csdf(csdf_ring()).codes())


# ---------------------------------------------------------------------------
# FSM-SADF scenarios
# ---------------------------------------------------------------------------


def scenario(name: str, t_a=1, t_b=1, extra_tokens=0) -> Scenario:
    g = SDFGraph(name)
    g.add_actor("a", t_a)
    g.add_actor("b", t_b)
    g.add_edge("a", "a", tokens=1, name="self_a")
    g.add_edge("a", "b", tokens=1, name="ab")
    g.add_edge("b", "a", tokens=1 + extra_tokens, name="ba")
    return Scenario(name, g)


@pytest.fixture
def modes():
    return {"fast": scenario("fast"), "slow": scenario("slow", 5, 3)}


class TestScenarioUndefined:
    def test_fires(self, modes):
        fsm = ScenarioFSM.free_choice(["fast", "ghost"])
        report = lint_scenarios({"fast": modes["fast"]}, fsm)
        (finding,) = report.by_code("scenario-undefined")
        assert finding.data["scenario"] == "ghost"
        assert not report.ok

    def test_clean(self, modes):
        fsm = ScenarioFSM.free_choice(["fast", "slow"])
        assert "scenario-undefined" not in set(lint_scenarios(modes, fsm).codes())


class TestScenarioUnreachable:
    def test_fires(self, modes):
        fsm = ScenarioFSM.free_choice(["fast"])  # "slow" defined, unused
        (finding,) = lint_scenarios(modes, fsm).by_code("scenario-unreachable")
        assert finding.data["scenario"] == "slow"

    def test_clean(self, modes):
        fsm = ScenarioFSM.free_choice(["fast", "slow"])
        assert "scenario-unreachable" not in set(lint_scenarios(modes, fsm).codes())


class TestScenarioDeadState:
    def test_fires(self, modes):
        fsm = ScenarioFSM("s0")
        fsm.add_transition("s0", "fast", "s1")  # s1 has no way out
        (finding,) = lint_scenarios(modes, fsm).by_code("scenario-dead-state")
        assert "s1" in finding.data["state"]

    def test_unreachable_dead_state_does_not_fire(self, modes):
        fsm = ScenarioFSM("s0")
        fsm.add_transition("s0", "fast", "s0")
        fsm.add_transition("s9", "slow", "s_dead")  # unreachable island
        report = lint_scenarios(modes, fsm)
        assert "scenario-dead-state" not in set(report.codes())


class TestScenarioTokenMismatch:
    def test_fires(self, modes):
        unbalanced = dict(modes, slow=scenario("slow", 5, 3, extra_tokens=1))
        fsm = ScenarioFSM.free_choice(["fast", "slow"])
        (finding,) = lint_scenarios(unbalanced, fsm).by_code("scenario-token-mismatch")
        assert finding.data["tokens"] == {"fast": 3, "slow": 4}

    def test_clean(self, modes):
        fsm = ScenarioFSM.free_choice(["fast", "slow"])
        assert "scenario-token-mismatch" not in set(
            lint_scenarios(modes, fsm).codes()
        )


# ---------------------------------------------------------------------------
# SDF · rate · kernel guard
# ---------------------------------------------------------------------------


class TestKernelGuardOverflow:
    def test_fires_on_huge_execution_times(self):
        report = lint(ring(t_a=2 ** 60, t_b=2 ** 60))
        (finding,) = report.by_code("kernel-guard-overflow")
        assert finding.severity == "warning"
        assert finding.data["estimate_bits"] >= 53
        assert finding.data["guard_bits"] == 53

    def test_fires_on_huge_denominator_lcm(self):
        from fractions import Fraction

        # A fine-grained denominator scales the other actor's (tame)
        # integer time past the guard once both sit on a common base.
        g = ring(t_a=Fraction(1, 2 ** 30 - 1), t_b=2 ** 30)
        (finding,) = lint(g).by_code("kernel-guard-overflow")
        assert finding.data["scale"] == 2 ** 30 - 1

    def test_margin_is_configurable(self):
        # ~2**50 estimate: inside the default 16x margin, outside 1x.
        g = ring(t_a=2 ** 48, t_b=2 ** 48)
        assert "kernel-guard-overflow" in codes(lint(g))
        assert "kernel-guard-overflow" not in codes(
            lint(g, overflow_margin=1)
        )

    def test_clean_on_small_graphs(self):
        assert "kernel-guard-overflow" not in codes(lint(ring()))
        assert "kernel-guard-overflow" not in codes(lint(figure3_graph()))

    def test_requires_consistency(self):
        g = SDFGraph("inconsistent")
        g.add_actor("a", 2 ** 60)
        g.add_actor("b", 2 ** 60)
        g.add_edge("a", "b", production=2, consumption=1, tokens=1)
        g.add_edge("b", "a", production=2, consumption=1, tokens=1)
        assert "kernel-guard-overflow" not in codes(lint(g))
