"""Buffer/throughput Pareto exploration."""

from fractions import Fraction

import pytest

from repro.analysis.pareto import ParetoPoint, explore_buffer_throughput, pareto_frontier
from repro.analysis.throughput import throughput
from repro.errors import ValidationError
from repro.graphs.dsp import sample_rate_converter
from repro.sdf.graph import SDFGraph


def chain(times=(2, 3)):
    g = SDFGraph("chain")
    for i, t in enumerate(times):
        g.add_actor(f"a{i}", t)
        g.add_edge(f"a{i}", f"a{i}", tokens=1, name=f"self_a{i}")
    for i in range(len(times) - 1):
        g.add_edge(f"a{i}", f"a{i + 1}", name=f"ch{i}")
    return g


class TestExploration:
    def test_reaches_unbounded_target(self):
        g = chain()
        points = explore_buffer_throughput(g)
        assert points[-1].cycle_time == throughput(g).cycle_time

    def test_cycle_times_non_increasing(self):
        g = chain((2, 5, 3))
        points = explore_buffer_throughput(g)
        times = [p.cycle_time for p in points]
        assert times == sorted(times, reverse=True)

    def test_capacities_grow_monotonically(self):
        g = chain((1, 4))
        points = explore_buffer_throughput(g)
        for earlier, later in zip(points, points[1:]):
            assert later.total_buffer > earlier.total_buffer

    def test_first_point_is_minimal_live(self):
        from repro.analysis.buffer import minimal_buffer_sizes

        g = chain()
        points = explore_buffer_throughput(g)
        assert points[0].capacities == minimal_buffer_sizes(g)

    def test_budget_stops_exploration(self):
        g = chain((1, 9))
        points = explore_buffer_throughput(g, max_total_buffer=2)
        assert points[-1].total_buffer >= 2 or points[-1].cycle_time == 9

    def test_custom_start(self):
        g = chain()
        points = explore_buffer_throughput(g, capacities={"ch0": 5})
        assert points[0].capacities == {"ch0": 5}

    def test_samplerate_curve(self):
        g = sample_rate_converter()
        points = explore_buffer_throughput(g, max_total_buffer=500)
        assert points[-1].cycle_time == 294
        assert points[0].cycle_time > points[-1].cycle_time

    def test_unbounded_target_rejected(self):
        g = SDFGraph()
        g.add_actor("a", 0)
        g.add_edge("a", "a", tokens=1)
        with pytest.raises(ValidationError, match="unbounded"):
            explore_buffer_throughput(g)

    def test_no_sizable_channels(self):
        g = SDFGraph()
        g.add_actor("a", 2)
        g.add_edge("a", "a", tokens=1)
        points = explore_buffer_throughput(g)
        assert len(points) == 1 and points[0].cycle_time == 2


class TestFrontier:
    def test_dominated_points_removed(self):
        points = [
            ParetoPoint({"x": 1}, Fraction(10)),
            ParetoPoint({"x": 2}, Fraction(10)),  # dominated: more buffer, same time
            ParetoPoint({"x": 3}, Fraction(7)),
        ]
        frontier = pareto_frontier(points)
        assert [p.total_buffer for p in frontier] == [1, 3]

    def test_frontier_of_real_exploration(self):
        g = chain((2, 5, 3))
        points = explore_buffer_throughput(g)
        frontier = pareto_frontier(points)
        times = [p.cycle_time for p in frontier]
        assert times == sorted(times, reverse=True)
        assert len(set(times)) == len(times)  # strictly improving

    def test_plateau_handled(self):
        # Two parallel chains from a shared source: both buffers must
        # grow together before the cycle time improves.
        g = SDFGraph("fork")
        for name, t in (("src", 1), ("x", 6), ("y", 6)):
            g.add_actor(name, t)
            g.add_edge(name, name, tokens=1, name=f"self_{name}")
        g.add_edge("src", "x", name="cx")
        g.add_edge("src", "y", name="cy")
        points = explore_buffer_throughput(g, max_total_buffer=30)
        assert points[-1].cycle_time == throughput(g).cycle_time


class TestCapacitiesForThroughput:
    def test_meets_constraint(self):
        from repro.analysis.pareto import capacities_for_throughput
        from repro.analysis.buffer import buffer_aware_throughput

        g = chain((2, 5, 3))
        target = throughput(g).cycle_time
        capacities = capacities_for_throughput(g, target)
        assert buffer_aware_throughput(g, capacities).cycle_time <= target

    def test_relaxed_constraint_needs_less_buffer(self):
        from repro.analysis.pareto import capacities_for_throughput

        g = chain((2, 5, 3))
        tight = capacities_for_throughput(g, throughput(g).cycle_time)
        loose = capacities_for_throughput(g, throughput(g).cycle_time * 2)
        assert sum(loose.values()) <= sum(tight.values())

    def test_locally_minimal(self):
        from repro.analysis.pareto import capacities_for_throughput
        from repro.analysis.buffer import buffer_aware_throughput
        from repro.errors import DeadlockError, ValidationError

        g = chain((1, 4))
        target = throughput(g).cycle_time
        capacities = capacities_for_throughput(g, target)
        for channel in capacities:
            probe = dict(capacities)
            probe[channel] -= 1
            try:
                assert buffer_aware_throughput(g, probe).cycle_time > target
            except (DeadlockError, ValidationError):
                pass  # shrinking deadlocks: also "worse"

    def test_unreachable_constraint_rejected(self):
        from repro.analysis.pareto import capacities_for_throughput

        g = chain((2, 5, 3))
        with pytest.raises(ValidationError, match="unreachable"):
            capacities_for_throughput(g, Fraction(1))
