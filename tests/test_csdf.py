"""The cyclo-static dataflow extension."""

from fractions import Fraction

import pytest

from repro.analysis.throughput import throughput
from repro.errors import (
    DeadlockError,
    InconsistentGraphError,
    UnboundedThroughputError,
    ValidationError,
)
from repro.csdf import (
    CSDFGraph,
    csdf_repetition_vector,
    csdf_sequential_schedule,
    csdf_symbolic_iteration,
    csdf_throughput,
    csdf_to_hsdf,
    csdf_to_sdf_approximation,
    is_csdf_live,
)


def self_edge(graph: CSDFGraph, actor: str, tokens: int = 1) -> None:
    """A CSDF self-loop: one token moved per phase."""
    phases = graph.phase_count(actor)
    graph.add_edge(actor, actor, [1] * phases, [1] * phases, tokens, name=f"self_{actor}")


@pytest.fixture
def updown():
    """Two-phase producer feeding a single-phase consumer.

    ``P`` alternates producing 2 then 1 tokens (3 per cycle) with phase
    times 1 and 2; ``C`` consumes 3 per firing with time 4.
    """
    g = CSDFGraph("updown")
    g.add_actor("P", [1, 2])
    g.add_actor("C", [4])
    self_edge(g, "P")
    self_edge(g, "C")
    g.add_edge("P", "C", production=[2, 1], consumption=[3], name="data")
    g.add_edge("C", "P", production=[3], consumption=[2, 1], tokens=3, name="space")
    return g


class TestModel:
    def test_phase_counts(self, updown):
        assert updown.phase_count("P") == 2
        assert updown.phase_count("C") == 1
        assert not updown.is_plain_sdf()

    def test_sequence_length_must_match_phases(self):
        g = CSDFGraph()
        g.add_actor("a", [1, 2])
        g.add_actor("b", [1])
        with pytest.raises(ValidationError, match="production sequence"):
            g.add_edge("a", "b", production=[1], consumption=[2])
        with pytest.raises(ValidationError, match="consumption sequence"):
            g.add_edge("a", "b", production=[1, 1], consumption=[1, 1])

    def test_zero_phases_allowed_but_not_all_zero(self):
        g = CSDFGraph()
        g.add_actor("a", [1, 1])
        g.add_actor("b", [1])
        g.add_edge("a", "b", production=[0, 2], consumption=[2])
        with pytest.raises(ValidationError, match="at least one token"):
            g.add_edge("a", "b", production=[0, 0], consumption=[1])

    def test_negative_rates_rejected(self):
        g = CSDFGraph()
        g.add_actor("a", [1])
        with pytest.raises(ValidationError):
            g.add_edge("a", "a", production=[-1], consumption=[1])

    def test_empty_phase_list_rejected(self):
        g = CSDFGraph()
        with pytest.raises(ValidationError):
            g.add_actor("a", [])

    def test_negative_time_rejected(self):
        g = CSDFGraph()
        with pytest.raises(ValidationError):
            g.add_actor("a", [1, -1])


class TestRepetition:
    def test_updown_vector(self, updown):
        # One cycle of P (3 tokens) feeds one firing of C.
        assert csdf_repetition_vector(updown) == {"P": 2, "C": 1}

    def test_phase_multiplicity(self):
        g = CSDFGraph()
        g.add_actor("a", [1, 1, 1])  # 3 phases producing 1 each
        g.add_actor("b", [1])
        self_edge(g, "a")
        self_edge(g, "b")
        g.add_edge("a", "b", production=[1, 1, 1], consumption=[2])
        g.add_edge("b", "a", production=[2], consumption=[1, 1, 1], tokens=6)
        # Cycle balance: k(a)·3 = k(b)·2 → k = (2, 3); γ = (6, 3).
        assert csdf_repetition_vector(g) == {"a": 6, "b": 3}

    def test_inconsistent_detected(self):
        g = CSDFGraph()
        g.add_actor("a", [1])
        g.add_actor("b", [1])
        g.add_edge("a", "b", production=[2], consumption=[1])
        g.add_edge("b", "a", production=[1], consumption=[1])
        with pytest.raises(InconsistentGraphError):
            csdf_repetition_vector(g)


class TestSchedule:
    def test_updown_schedule(self, updown):
        schedule = csdf_sequential_schedule(updown)
        assert len(schedule) == 3
        assert schedule.count("P") == 2 and schedule.count("C") == 1

    def test_phase_rates_respected(self):
        # C can only fire after BOTH phases of P (needs 3 tokens).
        g = CSDFGraph()
        g.add_actor("P", [1, 1])
        g.add_actor("C", [1])
        self_edge(g, "P")
        self_edge(g, "C")
        g.add_edge("P", "C", production=[2, 1], consumption=[3])
        g.add_edge("C", "P", production=[3], consumption=[2, 1], tokens=3)
        schedule = csdf_sequential_schedule(g)
        assert schedule.index("C") > schedule.index("P")

    def test_deadlock_detected(self):
        g = CSDFGraph()
        g.add_actor("a", [1])
        g.add_actor("b", [1])
        g.add_edge("a", "b", production=[1], consumption=[1])
        g.add_edge("b", "a", production=[1], consumption=[1])
        with pytest.raises(DeadlockError):
            csdf_sequential_schedule(g)
        assert not is_csdf_live(g)

    def test_live(self, updown):
        assert is_csdf_live(updown)


class TestSymbolic:
    def test_matrix_square_in_tokens(self, updown):
        iteration = csdf_symbolic_iteration(updown)
        assert iteration.token_count == updown.total_tokens()
        assert iteration.matrix.nrows == iteration.matrix.ncols == 5

    def test_source_actor_rejected(self):
        g = CSDFGraph()
        g.add_actor("src", [1, 1])
        g.add_actor("dst", [1])
        self_edge(g, "dst")
        g.add_edge("src", "dst", production=[1, 0], consumption=[1])
        with pytest.raises(UnboundedThroughputError):
            csdf_symbolic_iteration(g)

    def test_single_phase_matches_sdf_engine(self):
        # A 1-phase CSDF graph must produce the same matrix as the SDF
        # engine on the equivalent SDF graph.
        from repro.core.symbolic import symbolic_iteration
        from repro.sdf.graph import SDFGraph

        c = CSDFGraph("deg")
        c.add_actor("a", [3])
        c.add_actor("b", [1])
        c.add_edge("a", "b", production=[1], consumption=[2], name="ab")
        c.add_edge("b", "a", production=[2], consumption=[1], tokens=2, name="ba")

        s = SDFGraph("deg")
        s.add_actor("a", 3)
        s.add_actor("b", 1)
        s.add_edge("a", "b", production=1, consumption=2, name="ab")
        s.add_edge("b", "a", production=2, consumption=1, tokens=2, name="ba")

        assert csdf_symbolic_iteration(c).matrix == symbolic_iteration(s).matrix


class TestThroughputAndConversion:
    def test_updown_throughput(self, updown):
        result = csdf_throughput(updown)
        # Hand check: P0 at [0,1], P1 [1,3], C [3,7]; steady state is
        # limited by the C->P->C loop: 1 + 2 + 4 = 7 per iteration.
        assert result.cycle_time == 7
        assert result.per_actor["P"] == Fraction(2, 7)
        assert result.per_actor["C"] == Fraction(1, 7)

    def test_compact_hsdf_preserves_cycle_time(self, updown):
        conv = csdf_to_hsdf(updown)
        assert conv.within_paper_bounds()
        assert throughput(conv.graph, method="hsdf").cycle_time == 7

    def test_compact_hsdf_much_smaller_than_phase_expansion(self):
        # A phase-heavy graph: the compact conversion depends only on
        # tokens, not on the phase-firing count.
        g = CSDFGraph("phases")
        g.add_actor("a", [1] * 12)
        g.add_actor("b", [2])
        self_edge(g, "a")
        self_edge(g, "b")
        g.add_edge("a", "b", production=[1] * 12, consumption=[4])
        g.add_edge("b", "a", production=[4], consumption=[1] * 12, tokens=12)
        gamma = csdf_repetition_vector(g)
        conv = csdf_to_hsdf(g)
        assert conv.within_paper_bounds()
        assert sum(gamma.values()) == 15  # phase-expansion size
        assert throughput(conv.graph, method="hsdf").cycle_time is not None

    def test_sdf_approximation_is_conservative(self, updown):
        sdf = csdf_to_sdf_approximation(updown)
        approx = throughput(sdf)
        exact = csdf_throughput(updown)
        assert approx.cycle_time >= exact.cycle_time

    def test_sdf_approximation_structure(self, updown):
        sdf = csdf_to_sdf_approximation(updown)
        assert sdf.execution_time("P") == 3  # 1 + 2
        edge = sdf.edge("data")
        assert edge.production == 3 and edge.consumption == 3

    def test_simulation_cross_check(self, updown):
        # Validate the CSDF symbolic engine against the SDF simulator on
        # the compact HSDF realisation.
        conv = csdf_to_hsdf(updown)
        assert (
            throughput(conv.graph, method="simulation").cycle_time
            == csdf_throughput(updown).cycle_time
        )


class TestCsdfIo:
    def test_round_trip(self, updown):
        from repro.csdf.io import from_json, to_json

        clone = from_json(to_json(updown))
        assert clone.actor_count() == updown.actor_count()
        assert clone.edge_count() == updown.edge_count()
        assert [e.production for e in clone.edges] == [
            e.production for e in updown.edges
        ]
        assert clone.actor("P").execution_times == (1, 2)

    def test_fraction_times(self):
        from fractions import Fraction

        from repro.csdf.io import from_dict, to_dict

        g = CSDFGraph("frac")
        g.add_actor("a", [Fraction(1, 3), 2])
        self_edge(g, "a")
        clone = from_dict(to_dict(g))
        assert clone.actor("a").execution_times == (Fraction(1, 3), 2)

    def test_wrong_type_rejected(self):
        from repro.csdf.io import from_dict

        with pytest.raises(ValidationError, match="not a CSDF"):
            from_dict({"type": "sdf", "actors": [], "edges": []})

    @pytest.mark.parametrize("seed", range(4))
    def test_random_round_trip(self, seed):
        import random

        from repro.csdf.io import from_json, to_json
        from repro.graphs.random_sdf import random_live_csdf

        g = random_live_csdf(random.Random(seed))
        clone = from_json(to_json(g))
        from repro.csdf import csdf_throughput

        assert csdf_throughput(clone).cycle_time == csdf_throughput(g).cycle_time
