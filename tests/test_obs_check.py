"""The artefact validators reject malformed inputs with precise messages.

``repro.obs.check`` is the CI gate for every artefact the pipeline
emits; these tests feed it truncated, mistagged and type-confused
inputs and assert the error names the exact location — a validator
that says "invalid" without a place is useless in a CI log.
"""

from __future__ import annotations

import json

import pytest

from repro.graphs import modem
from repro.analysis.throughput import throughput
from repro.obs import check
from repro.obs import provenance as provenance_mod
from repro.obs.check import (
    BENCH_SCHEMA,
    PROFILE_SCHEMA,
    PROVENANCE_SCHEMA,
    SchemaError,
    check_file,
    main,
    validate_bench,
    validate_metrics_snapshot,
    validate_profile,
    validate_provenance,
    validate_span_jsonl,
)


def test_schema_constants_in_sync_with_the_emitters():
    assert check.PROVENANCE_SCHEMA == provenance_mod.PROVENANCE_SCHEMA
    assert tuple(check._WITNESS_SPACES) == provenance_mod.WITNESS_SPACES


# ----------------------------------------------------------------------
# fixtures: minimal valid documents to mutate
# ----------------------------------------------------------------------

def _span_line(**over):
    row = {"id": "s1", "name": "analysis", "pid": 1, "tid": 1,
           "start": 0.0, "end": 1.0, "args": {}}
    row.update(over)
    return json.dumps(row)


def _bench(**over):
    doc = {
        "schema": BENCH_SCHEMA,
        "suite": "demo",
        "host": {"platform": "linux", "python": "3.12", "git_sha": None},
        "entries": [{"name": "t", "unit": "s", "value": 1.5,
                     "baseline": None, "meta": {}}],
    }
    doc.update(over)
    return doc


def _provenance(**over):
    doc = {
        "schema": PROVENANCE_SCHEMA,
        "graph": "g",
        "fingerprint": "abc123",
        "algorithm": "karp",
        "method": "symbolic",
        "status": "exact",
        "cycle_time": "31/2",
        "steps": [{"kind": "pruning", "before_fingerprint": "a",
                   "after_fingerprint": "b",
                   "before_size": {"actors": 3, "edges": 4, "tokens": 2},
                   "after_size": {"actors": 3, "edges": 3, "tokens": 2},
                   "detail": {}}],
        "witness": {"space": "token", "source": "karp",
                    "arcs": [{"source": "e[0]", "target": "e[0]",
                              "weight": "31/2", "tokens": 1, "key": None}],
                    "groups": {}},
        "witness_unavailable": None,
        "tiers": [{"tier": "simulation", "status": "ok", "reason": None}],
        "degradation_reason": None,
        "bound_phase_count": None,
        "bound_abstract_cycle_time": None,
    }
    doc.update(over)
    return doc


def _profile(**over):
    doc = {
        "schema": PROFILE_SCHEMA,
        "graph": "g",
        "fingerprint": "abc123",
        "rows": [{"method": "symbolic", "stage": "total",
                  "wall_seconds": 0.1, "cpu_seconds": 0.1,
                  "mem_peak_bytes": 1024, "total": True}],
        "cycle_times": {"symbolic": "31/2"},
    }
    doc.update(over)
    return doc


# ----------------------------------------------------------------------
# truncated JSONL
# ----------------------------------------------------------------------

class TestTruncatedJsonl:
    def test_span_export_truncated_mid_line(self):
        text = _span_line() + "\n" + _span_line(id="s2")[:20]
        with pytest.raises(SchemaError, match=r"line 2: not valid JSON"):
            validate_span_jsonl(text)

    def test_bench_history_truncated_mid_line(self, tmp_path):
        path = tmp_path / "history.jsonl"
        full = json.dumps(_bench())
        path.write_text(full + "\n" + full[:-25] + "\n")
        with pytest.raises(SchemaError, match=r"line 2: not valid JSON"):
            check_file(str(path))

    def test_intact_bench_history_counts_runs(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text("\n".join(json.dumps(_bench()) for _ in range(3)) + "\n")
        assert check_file(str(path)) == {"runs": 3}


# ----------------------------------------------------------------------
# wrong schema tags
# ----------------------------------------------------------------------

class TestWrongSchemaTag:
    def test_bench(self):
        with pytest.raises(SchemaError,
                           match=r"schema must be 'repro-bench-v1', "
                                 r"got 'repro-bench-v0'"):
            validate_bench(_bench(schema="repro-bench-v0"))

    def test_provenance(self):
        with pytest.raises(SchemaError,
                           match=r"schema must be 'repro-provenance-v1', "
                                 r"got 'certificate'"):
            validate_provenance(_provenance(schema="certificate"))

    def test_profile(self):
        with pytest.raises(SchemaError,
                           match=r"schema must be 'repro-profile-v1', got None"):
            validate_profile(_profile(schema=None))

    def test_metrics_snapshot(self):
        with pytest.raises(SchemaError, match=r"schema must be"):
            validate_metrics_snapshot({"schema": "nope", "metrics": []})


# ----------------------------------------------------------------------
# non-numeric values where numbers are required
# ----------------------------------------------------------------------

class TestNonNumericValues:
    def test_bench_entry_value(self):
        doc = _bench()
        doc["entries"][0]["value"] = "fast"
        with pytest.raises(SchemaError,
                           match=r"entries\[0\]: 'value' must be a number"):
            validate_bench(doc)

    def test_bench_boolean_is_not_a_number(self):
        doc = _bench()
        doc["entries"][0]["value"] = True
        with pytest.raises(SchemaError, match=r"'value' must be a number"):
            validate_bench(doc)

    def test_metrics_sample_value(self):
        doc = {"schema": "repro-metrics-v1", "metrics": [
            {"name": "hits", "type": "counter",
             "samples": [{"labels": {}, "value": "many"}]}]}
        with pytest.raises(SchemaError,
                           match=r"metrics\[0\].samples\[0\]: needs a numeric"):
            validate_metrics_snapshot(doc)

    def test_profile_wall_seconds(self):
        doc = _profile()
        doc["rows"][0]["wall_seconds"] = "0.1s"
        with pytest.raises(SchemaError,
                           match=r"rows\[0\]: 'wall_seconds' must be a "
                                 r"non-negative number, got '0.1s'"):
            validate_profile(doc)

    def test_profile_negative_cost(self):
        doc = _profile()
        doc["rows"][0]["cpu_seconds"] = -0.2
        with pytest.raises(SchemaError, match=r"'cpu_seconds' must be a "
                                              r"non-negative number"):
            validate_profile(doc)

    def test_provenance_weight_not_a_rational(self):
        doc = _provenance()
        doc["witness"]["arcs"][0]["weight"] = "fifteen and a half"
        with pytest.raises(SchemaError,
                           match=r"witness.arcs\[0\]: 'weight' .* is not a "
                                 r"valid rational"):
            validate_provenance(doc)

    def test_provenance_weight_must_be_string_encoded(self):
        doc = _provenance()
        doc["witness"]["arcs"][0]["weight"] = 15.5
        with pytest.raises(SchemaError,
                           match=r"must be a string-encoded rational"):
            validate_provenance(doc)


# ----------------------------------------------------------------------
# provenance structure
# ----------------------------------------------------------------------

class TestProvenanceValidator:
    def test_missing_fingerprint(self):
        with pytest.raises(SchemaError,
                           match=r"needs a non-empty string 'fingerprint'"):
            validate_provenance(_provenance(fingerprint=""))

    def test_unknown_status(self):
        with pytest.raises(SchemaError, match=r"status must be one of .* "
                                              r"got 'approximate'"):
            validate_provenance(_provenance(status="approximate"))

    def test_unknown_witness_space(self):
        doc = _provenance()
        doc["witness"]["space"] = "quantum"
        with pytest.raises(SchemaError, match=r"space must be one of .* "
                                              r"got 'quantum'"):
            validate_provenance(doc)

    def test_empty_arc_list(self):
        doc = _provenance()
        doc["witness"]["arcs"] = []
        with pytest.raises(SchemaError, match=r"'arcs' must be a non-empty"):
            validate_provenance(doc)

    def test_negative_tokens(self):
        doc = _provenance()
        doc["witness"]["arcs"][0]["tokens"] = -1
        with pytest.raises(SchemaError,
                           match=r"'tokens' must be a non-negative integer"):
            validate_provenance(doc)

    def test_step_size_must_be_integral(self):
        doc = _provenance()
        doc["steps"][0]["after_size"]["edges"] = 3.5
        with pytest.raises(SchemaError,
                           match=r"steps\[0\]: size 'edges' must be an "
                                 r"integer, got 3.5"):
            validate_provenance(doc)

    def test_unknown_tier_status(self):
        doc = _provenance()
        doc["tiers"][0]["status"] = "maybe"
        with pytest.raises(SchemaError,
                           match=r"tiers\[0\]: status must be one of"):
            validate_provenance(doc)

    def test_conservative_needs_bound_ingredients(self):
        doc = _provenance(status="conservative-bound")
        with pytest.raises(SchemaError,
                           match=r"need an integer 'bound_phase_count'"):
            validate_provenance(doc)

    def test_summary_counts(self):
        assert validate_provenance(_provenance()) == {
            "steps": 1, "witness_arcs": 1, "tiers": 1}

    def test_real_record_round_trips_through_the_validator(self):
        record = throughput(modem()).provenance
        data = json.loads(json.dumps(record.as_dict()))
        summary = validate_provenance(data)
        assert summary["witness_arcs"] == len(record.witness.arcs)
        assert provenance_mod.ProvenanceRecord.from_dict(data) == record


# ----------------------------------------------------------------------
# file-kind inference and the CLI gate
# ----------------------------------------------------------------------

class TestCheckFile:
    def test_provenance_json_is_inferred(self, tmp_path):
        path = tmp_path / "certificate.json"
        path.write_text(json.dumps(_provenance()))
        assert check_file(str(path))["witness_arcs"] == 1

    def test_profile_json_is_inferred(self, tmp_path):
        path = tmp_path / "profile.json"
        path.write_text(json.dumps(_profile()))
        assert check_file(str(path)) == {"rows": 1, "methods": 1}

    def test_unrecognised_shape(self, tmp_path):
        path = tmp_path / "mystery.json"
        path.write_text('{"hello": "world"}')
        with pytest.raises(SchemaError, match=r"unrecognised artefact shape"):
            check_file(str(path))

    def test_main_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(_provenance()))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(_provenance(status="approximate")))
        assert main([str(good)]) == 0
        assert "ok" in capsys.readouterr().out
        assert main([str(good), str(bad)]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.err and "approximate" in captured.err
        assert main([]) == 2


# ----------------------------------------------------------------------
# SARIF logs
# ----------------------------------------------------------------------


def _sarif(**overrides):
    doc = {
        "version": "2.1.0",
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-devlint",
                        "rules": [
                            {"id": "broad-except"},
                            {"id": "determinism"},
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": "broad-except",
                        "ruleIndex": 0,
                        "level": "warning",
                        "message": {"text": "except clause catches Exception"},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {"uri": "src/a.py"},
                                    "region": {"startLine": 5},
                                },
                                "logicalLocations": [{"name": "guarded"}],
                            }
                        ],
                    }
                ],
            }
        ],
    }
    doc.update(overrides)
    return doc


class TestSarifValidator:
    def test_valid_log(self):
        assert check.validate_sarif(_sarif()) == {
            "runs": 1, "rules": 2, "results": 1,
        }

    def test_wrong_version(self):
        with pytest.raises(SchemaError, match=r"version must be '2\.1\.0'"):
            check.validate_sarif(_sarif(version="2.0.0"))

    def test_empty_runs(self):
        with pytest.raises(SchemaError, match=r"non-empty array"):
            check.validate_sarif(_sarif(runs=[]))

    def test_missing_driver(self):
        doc = _sarif()
        doc["runs"][0]["tool"] = {}
        with pytest.raises(SchemaError, match=r"runs\[0\]: needs tool\.driver"):
            check.validate_sarif(doc)

    def test_duplicate_rule_id(self):
        doc = _sarif()
        doc["runs"][0]["tool"]["driver"]["rules"].append({"id": "broad-except"})
        with pytest.raises(SchemaError, match=r"rules\[2\].*duplicate rule id"):
            check.validate_sarif(doc)

    def test_unknown_rule_id(self):
        doc = _sarif()
        doc["runs"][0]["results"][0]["ruleId"] = "no-such-rule"
        with pytest.raises(
            SchemaError, match=r"results\[0\].*not in the driver's rules"
        ):
            check.validate_sarif(doc)

    def test_bad_level(self):
        doc = _sarif()
        doc["runs"][0]["results"][0]["level"] = "fatal"
        with pytest.raises(SchemaError, match=r"level must be one of"):
            check.validate_sarif(doc)

    def test_mismatched_rule_index(self):
        doc = _sarif()
        doc["runs"][0]["results"][0]["ruleIndex"] = 1
        with pytest.raises(
            SchemaError, match=r"ruleIndex does not point at ruleId"
        ):
            check.validate_sarif(doc)

    def test_bad_start_line(self):
        doc = _sarif()
        doc["runs"][0]["results"][0]["locations"][0]["physicalLocation"][
            "region"
        ]["startLine"] = 0
        with pytest.raises(
            SchemaError, match=r"locations\[0\].*startLine must be a positive"
        ):
            check.validate_sarif(doc)

    def test_missing_artifact_uri(self):
        doc = _sarif()
        del doc["runs"][0]["results"][0]["locations"][0]["physicalLocation"][
            "artifactLocation"
        ]
        with pytest.raises(
            SchemaError, match=r"needs artifactLocation\.uri"
        ):
            check.validate_sarif(doc)

    def test_empty_logical_name(self):
        doc = _sarif()
        doc["runs"][0]["results"][0]["locations"][0]["logicalLocations"] = [
            {"name": ""}
        ]
        with pytest.raises(SchemaError, match=r"non-empty 'name'"):
            check.validate_sarif(doc)

    def test_check_file_routes_sarif(self, tmp_path):
        path = tmp_path / "lint.sarif"
        path.write_text(json.dumps(_sarif()))
        assert check_file(str(path)) == {"runs": 1, "rules": 2, "results": 1}


# ----------------------------------------------------------------------
# result-store artefacts (records, verify reports, stats censuses)
# ----------------------------------------------------------------------


def _store_record(value=(1, 2, 3), fingerprint="fp", analysis="throughput"):
    """A real record written by the store, plus its digest — the
    validator must agree with the writer without sharing code."""
    import tempfile

    from repro.analysis.store import ResultStore, key_digest

    with tempfile.TemporaryDirectory() as root:
        store = ResultStore(root)
        assert store.put(fingerprint, analysis, value)
        digest = key_digest(fingerprint, analysis)
        return store._record_path(digest).read_bytes(), digest


def _store_verify_doc(**over):
    doc = {
        "schema": check.STORE_VERIFY_SCHEMA, "root": "/tmp/store",
        "records": 2, "valid": 1,
        "corrupt": [{"path": "records/ab/abc.rec", "reason": "torn-payload"}],
        "quarantined_now": 1, "undetected_corrupt": 0,
        "quarantined_records": 1, "tmp_files": 0, "bytes": 512,
        "journal": None,
    }
    doc.update(over)
    return doc


def _store_stats_doc(**over):
    doc = {
        "schema": check.STORE_STATS_SCHEMA, "root": "/tmp/store",
        "hits": 4, "misses": 2, "puts": 2, "put_skips": 0,
        "put_errors": 0, "quarantined": 0, "evictions": 0,
        "read_errors": 0, "records": 2, "bytes": 512,
        "quarantined_records": 0, "tmp_files": 0,
        "max_bytes": 1024, "hit_rate": 4 / 6,
    }
    doc.update(over)
    return doc


class TestStoreRecordValidator:
    def test_schema_constant_in_sync_with_the_store(self):
        from repro.analysis import store as store_mod

        assert check.STORE_SCHEMA == store_mod.STORE_SCHEMA
        assert check.STORE_VERIFY_SCHEMA == store_mod.VerifyReport.SCHEMA

    def test_real_record_validates(self):
        raw, digest = _store_record()
        summary = check.validate_store_record(raw, expected_digest=digest)
        assert summary["payload_bytes"] > 0

    def test_bad_magic(self):
        raw, _ = _store_record()
        with pytest.raises(SchemaError, match="magic"):
            check.validate_store_record(b"x" + raw)

    def test_torn_payload(self):
        raw, _ = _store_record()
        with pytest.raises(SchemaError, match="torn write"):
            check.validate_store_record(raw[:-1])

    def test_flipped_payload_byte(self):
        raw, _ = _store_record()
        with pytest.raises(SchemaError, match="checksum mismatch"):
            check.validate_store_record(raw[:-1] + bytes([raw[-1] ^ 1]))

    def test_renamed_record_fails_content_address(self):
        raw, _ = _store_record()
        with pytest.raises(SchemaError, match="renamed or aliased"):
            check.validate_store_record(raw, expected_digest="0" * 64)

    def test_header_must_be_json(self):
        bad = b"repro-store-v1\nnot json\npayload"
        with pytest.raises(SchemaError, match="not valid JSON"):
            check.validate_store_record(bad)


class TestStoreVerifyValidator:
    def test_valid_report(self):
        summary = check.validate_store_verify(_store_verify_doc())
        assert summary == {"records": 2, "corrupt": 1,
                           "undetected_corrupt": 0}

    def test_arithmetic_must_balance(self):
        with pytest.raises(SchemaError, match="must equal"):
            check.validate_store_verify(_store_verify_doc(valid=2))

    def test_undetected_arithmetic(self):
        with pytest.raises(SchemaError, match="undetected_corrupt"):
            check.validate_store_verify(
                _store_verify_doc(undetected_corrupt=1))

    def test_journal_agreement_block(self):
        doc = _store_verify_doc(journal={
            "path": "journal.jsonl", "checked": 2, "matched": 1,
            "missing": [{"fingerprint": "fp", "analysis": "throughput",
                         "status": "miss"}],
        })
        check.validate_store_verify(doc)
        doc["journal"]["matched"] = 2
        with pytest.raises(SchemaError, match="matched"):
            check.validate_store_verify(doc)

    def test_wrong_schema_tag(self):
        with pytest.raises(SchemaError, match="schema"):
            check.validate_store_verify(_store_verify_doc(schema="nope"))


class TestStoreStatsValidator:
    def test_valid_census(self):
        assert check.validate_store_stats(_store_stats_doc()) \
            == {"records": 2, "bytes": 512}

    def test_negative_counter_rejected(self):
        with pytest.raises(SchemaError, match="non-negative"):
            check.validate_store_stats(_store_stats_doc(puts=-1))

    def test_hit_rate_bounds(self):
        with pytest.raises(SchemaError, match="hit_rate"):
            check.validate_store_stats(_store_stats_doc(hit_rate=1.5))


class TestStoreCheckFileDispatch:
    def test_live_record_checked_with_content_address(self, tmp_path):
        raw, digest = _store_record()
        path = tmp_path / f"{digest}.rec"
        path.write_bytes(raw)
        assert check_file(str(path))["payload_bytes"] > 0
        # A renamed live record must fail: the stem is its address.
        alias = tmp_path / ("0" * 64 + ".rec")
        alias.write_bytes(raw)
        with pytest.raises(SchemaError, match="renamed"):
            check_file(str(alias))

    def test_quarantined_record_skips_the_address_check(self, tmp_path):
        raw, digest = _store_record()
        path = tmp_path / f"{digest}.key-mismatch.rec"
        path.write_bytes(raw)  # valid bytes under a quarantine name
        assert check_file(str(path))["payload_bytes"] > 0

    def test_verify_report_json_is_inferred(self, tmp_path):
        path = tmp_path / "verify.json"
        path.write_text(json.dumps(_store_verify_doc()))
        assert check_file(str(path))["records"] == 2

    def test_stats_json_is_inferred(self, tmp_path):
        path = tmp_path / "stats.json"
        path.write_text(json.dumps(_store_stats_doc()))
        assert check_file(str(path))["bytes"] == 512

    def test_cli_main_gates_a_real_verify_report(self, tmp_path):
        from repro.analysis.store import ResultStore

        store = ResultStore(tmp_path / "store")
        store.put("fp", "throughput", [1, 2, 3])
        report_path = tmp_path / "verify.json"
        report_path.write_text(json.dumps(store.verify().as_dict()))
        assert main([str(report_path)]) == 0


# ----------------------------------------------------------------------
# trace analytics / diff / regress / collapsed validators
# ----------------------------------------------------------------------

def test_analytics_schema_constants_in_sync_with_the_emitters():
    from repro.obs import analyze, diff, regress

    assert check.TRACE_SUMMARY_SCHEMA == analyze.TRACE_SUMMARY_SCHEMA
    assert check.TRACE_DIFF_SCHEMA == diff.TRACE_DIFF_SCHEMA
    assert check.REGRESS_SCHEMA == regress.REGRESS_SCHEMA


def _trace_summary():
    from repro.obs.analyze import summarize_traces

    rows = [
        {"id": "a", "parent": None, "name": "root", "pid": 1, "tid": 0,
         "start": 0.0, "end": 1.0, "dur": 1.0, "args": {}},
        {"id": "b", "parent": "a", "name": "stage", "pid": 1, "tid": 0,
         "start": 0.0, "end": 0.4, "dur": 0.4, "args": {}},
    ]
    return summarize_traces([("t", rows)])


class TestTraceSummaryValidator:
    def test_valid_summary(self):
        verdict = check.validate_trace_summary(_trace_summary())
        assert verdict["spans"] == 2 and verdict["stages"] == 2

    def test_self_must_partition_the_roots(self):
        doc = _trace_summary()
        doc["stages"][0]["self_seconds"] = 5.0
        doc["stages"][0]["total_seconds"] = 5.0
        with pytest.raises(SchemaError, match="partition"):
            check.validate_trace_summary(doc)

    def test_self_cannot_exceed_total_per_row(self):
        doc = _trace_summary()
        row = doc["stages"][0]
        row["self_seconds"] = row["total_seconds"] + 1.0
        with pytest.raises(SchemaError, match="self"):
            check.validate_trace_summary(doc)

    def test_percentiles_must_be_non_decreasing(self):
        doc = _trace_summary()
        doc["stages"][0]["p90_seconds"] = 0.0
        with pytest.raises(SchemaError, match="p90"):
            check.validate_trace_summary(doc)

    def test_critical_path_depths_consecutive(self):
        doc = _trace_summary()
        doc["critical_path"][1]["depth"] = 5
        with pytest.raises(SchemaError, match="depth"):
            check.validate_trace_summary(doc)

    def test_critical_path_child_within_parent(self):
        doc = _trace_summary()
        doc["critical_path"][1]["duration_seconds"] = 99.0
        with pytest.raises(SchemaError, match="critical"):
            check.validate_trace_summary(doc)

    def test_wrong_schema_tag(self):
        doc = _trace_summary()
        doc["schema"] = "repro-trace-summary-v0"
        with pytest.raises(SchemaError, match="schema"):
            check.validate_trace_summary(doc)


class TestTraceDiffValidator:
    def _diff(self):
        from repro.obs.diff import diff_documents

        return diff_documents(_trace_summary(), _trace_summary())

    def test_valid_diff(self):
        verdict = check.validate_trace_diff(self._diff())
        assert verdict["rows"] == 2 and verdict["regressed"] == 0

    def test_counts_must_match_rows(self):
        doc = self._diff()
        doc["counts"]["regressed"] = 7
        with pytest.raises(SchemaError, match="count"):
            check.validate_trace_diff(doc)

    def test_unknown_direction(self):
        doc = self._diff()
        doc["rows"][0]["direction"] = "sideways"
        with pytest.raises(SchemaError, match="direction"):
            check.validate_trace_diff(doc)


class TestRegressValidator:
    def _report(self, tmp_path):
        from repro.obs.regress import evaluate_history

        host = {"platform": "linux", "python": "3.12", "git_sha": None}
        lines = [json.dumps(_bench(host=host)) for _ in range(4)]
        path = tmp_path / "history.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return evaluate_history(path)

    def test_valid_report(self, tmp_path):
        verdict = check.validate_regress(self._report(tmp_path))
        assert verdict == {"entries": 1, "regressed": 0}

    def test_counts_cross_checked(self, tmp_path):
        doc = self._report(tmp_path)
        doc["counts"]["ok"] = 9
        with pytest.raises(SchemaError, match="count"):
            check.validate_regress(doc)

    def test_regressed_list_cross_checked(self, tmp_path):
        doc = self._report(tmp_path)
        doc["regressed"] = ["demo/t"]
        with pytest.raises(SchemaError, match="regressed"):
            check.validate_regress(doc)

    def test_unknown_verdict(self, tmp_path):
        doc = self._report(tmp_path)
        doc["results"][0]["verdict"] = "maybe"
        doc["counts"] = {"maybe": 1}
        with pytest.raises(SchemaError, match="verdict"):
            check.validate_regress(doc)


class TestCollapsedValidator:
    def test_valid_stacks(self):
        verdict = check.validate_collapsed("a;b 10\nc 3\n")
        assert verdict == {"stacks": 2, "frames": 3}

    def test_malformed_line_is_located(self):
        with pytest.raises(SchemaError, match="line 2"):
            check.validate_collapsed("a 1\nnot a stack line\n")

    def test_zero_count_rejected(self):
        with pytest.raises(SchemaError, match="positive"):
            check.validate_collapsed("a;b 0\n")

    def test_duplicate_stack_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            check.validate_collapsed("a;b 1\na;b 2\n")

    def test_check_file_routes_folded_extension(self, tmp_path):
        path = tmp_path / "trace.folded"
        path.write_text("root;leaf 120\n")
        assert check_file(str(path)) == {"stacks": 1, "frames": 2}


class TestHistoryHygiene:
    def test_missing_host_stamp_rejected(self, tmp_path):
        doc = _bench()
        del doc["host"]
        path = tmp_path / "history.jsonl"
        path.write_text(json.dumps(doc) + "\n")
        with pytest.raises(SchemaError, match="host"):
            check_file(str(path))

    def test_empty_platform_rejected(self, tmp_path):
        doc = _bench(host={"platform": "", "python": "3.12", "git_sha": None})
        path = tmp_path / "history.jsonl"
        path.write_text(json.dumps(doc) + "\n")
        with pytest.raises(SchemaError, match="platform"):
            check_file(str(path))

    def test_git_sha_runs_must_be_contiguous(self, tmp_path):
        docs = [
            _bench(host={"platform": "l", "python": "3", "git_sha": "aaa"}),
            _bench(host={"platform": "l", "python": "3", "git_sha": "bbb"}),
            _bench(host={"platform": "l", "python": "3", "git_sha": "aaa"}),
        ]
        path = tmp_path / "history.jsonl"
        path.write_text("".join(json.dumps(d) + "\n" for d in docs))
        with pytest.raises(SchemaError, match="aaa"):
            check_file(str(path))

    def test_interleaved_suites_are_fine(self, tmp_path):
        # Contiguity is per suite: alternating suites at one sha, then
        # both moving to the next sha, is the normal CI pattern.
        def at(suite, sha):
            return _bench(suite=suite,
                          host={"platform": "l", "python": "3",
                                "git_sha": sha})

        docs = [at("a", "s1"), at("b", "s1"), at("a", "s2"), at("b", "s2")]
        path = tmp_path / "history.jsonl"
        path.write_text("".join(json.dumps(d) + "\n" for d in docs))
        assert check_file(str(path)) == {"runs": 4}


class TestAnalyticsCheckFileDispatch:
    def test_trace_summary_json_is_inferred(self, tmp_path):
        path = tmp_path / "summary.json"
        path.write_text(json.dumps(_trace_summary()))
        assert check_file(str(path))["spans"] == 2

    def test_trace_diff_json_is_inferred(self, tmp_path):
        from repro.obs.diff import diff_documents

        path = tmp_path / "diff.json"
        path.write_text(json.dumps(
            diff_documents(_trace_summary(), _trace_summary())))
        assert check_file(str(path))["rows"] == 2
