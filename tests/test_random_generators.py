"""The random graph generators are correct by construction."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.random_sdf import (
    random_consistent_sdf,
    random_live_hsdf,
    random_ratio_graph,
)
from repro.sdf.repetition import is_consistent
from repro.sdf.schedule import is_live


class TestRandomSdf:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_consistent_live_token_bound(self, seed):
        rng = random.Random(seed)
        g = random_consistent_sdf(
            rng,
            n_actors=rng.randint(1, 7),
            extra_edges=rng.randint(0, 5),
            max_repetition=rng.randint(1, 5),
        )
        assert is_consistent(g)
        assert is_live(g)
        assert all(g.in_edges(a) for a in g.actor_names)

    def test_deterministic_given_seed(self):
        a = random_consistent_sdf(random.Random(42))
        b = random_consistent_sdf(random.Random(42))
        assert a.structurally_equal(b)

    def test_single_actor(self):
        g = random_consistent_sdf(random.Random(1), n_actors=1, extra_edges=3)
        assert g.actor_count() == 1
        assert is_live(g)


class TestRandomHsdf:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_live_homogeneous_token_bound(self, seed):
        rng = random.Random(seed)
        g = random_live_hsdf(
            rng, n_actors=rng.randint(1, 9), extra_edges=rng.randint(0, 8)
        )
        assert g.is_homogeneous()
        assert is_live(g)
        assert all(g.has_self_loop(a) for a in g.actor_names)


class TestRandomCsdf:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_consistent_live_token_bound(self, seed):
        from repro.csdf.analysis import is_csdf_consistent, is_csdf_live
        from repro.graphs.random_sdf import random_live_csdf

        rng = random.Random(seed)
        g = random_live_csdf(rng, n_actors=rng.randint(1, 5))
        assert is_csdf_consistent(g)
        assert is_csdf_live(g)
        assert all(g.in_edges(a) for a in g.actor_names)

    @pytest.mark.parametrize("seed", range(8))
    def test_compact_conversion_equivalence(self, seed):
        from repro.analysis.throughput import throughput
        from repro.csdf import csdf_throughput, csdf_to_hsdf
        from repro.graphs.random_sdf import random_live_csdf

        rng = random.Random(400 + seed)
        g = random_live_csdf(rng, n_actors=rng.randint(2, 4))
        conv = csdf_to_hsdf(g)
        assert conv.within_paper_bounds()
        assert (
            throughput(conv.graph, method="hsdf").cycle_time
            == csdf_throughput(g).cycle_time
        )


class TestRandomRatioGraph:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_no_zero_transit_cycles(self, seed):
        rng = random.Random(seed)
        g = random_ratio_graph(
            rng, n_nodes=rng.randint(1, 8), n_edges=rng.randint(0, 16)
        )
        assert g.find_zero_transit_cycle() is None

    def test_negative_weights_opt_in(self):
        rng = random.Random(3)
        g = random_ratio_graph(rng, n_edges=40, allow_negative=True)
        assert any(e.weight < 0 for e in g.edges)
        g2 = random_ratio_graph(random.Random(3), n_edges=40)
        assert all(e.weight >= 0 for e in g2.edges)
