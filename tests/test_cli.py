"""The ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import BUILTIN_GRAPHS, load_graph, main
from repro.sdf.io import to_json
from repro.graphs.examples import figure3_graph


@pytest.fixture
def fig3_file(tmp_path):
    path = tmp_path / "fig3.json"
    path.write_text(to_json(figure3_graph()))
    return str(path)


class TestLoading:
    def test_builtin_specs(self):
        g = load_graph("builtin:figure3")
        assert g.actor_count() == 2

    def test_unknown_builtin(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="available"):
            load_graph("builtin:nope")

    def test_all_builtins_load(self):
        for name in BUILTIN_GRAPHS:
            assert load_graph(f"builtin:{name}").actor_count() > 0

    def test_json_file(self, fig3_file):
        assert load_graph(fig3_file).actor_count() == 2

    def test_xml_file(self, tmp_path):
        from repro.sdf.io import to_sdf3_xml

        path = tmp_path / "g.xml"
        path.write_text(to_sdf3_xml(figure3_graph()))
        assert load_graph(str(path)).actor_count() == 2


class TestCommands:
    def test_info(self, capsys, fig3_file):
        assert main(["info", fig3_file, "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "actors:     2" in out
        assert "gamma(L) = 2" in out
        assert "live:       True" in out

    def test_throughput(self, capsys):
        assert main(["throughput", "builtin:figure3"]) == 0
        out = capsys.readouterr().out
        assert "iteration period: 7" in out
        assert "rate(L) = 2/7" in out

    def test_throughput_methods(self, capsys):
        for method in ("symbolic", "simulation", "hsdf"):
            assert main(["throughput", "builtin:figure3", "--method", method]) == 0
            assert "iteration period: 7" in capsys.readouterr().out

    def test_latency(self, capsys):
        assert main(["latency", "builtin:figure1"]) == 0
        out = capsys.readouterr().out
        assert "makespan: 23" in out

    def test_convert_compact(self, capsys, tmp_path):
        out_file = tmp_path / "compact.json"
        assert main(["convert", "builtin:figure3", "-o", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "compact HSDF" in out
        data = json.loads(out_file.read_text())
        assert any(a["name"].startswith("g_") for a in data["actors"])

    def test_convert_traditional(self, capsys, tmp_path):
        out_file = tmp_path / "trad.xml"
        assert main(["convert", "builtin:figure3", "--traditional", "-o", str(out_file)]) == 0
        assert "traditional HSDF: 3 actors" in capsys.readouterr().out
        assert "<sdf3" in out_file.read_text()

    def test_abstract_with_verification(self, capsys):
        assert main(["abstract", "builtin:figure1", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "conservative:      True" in out
        assert "abstract graph: 2 actors" in out

    def test_abstract_writes_output(self, capsys, tmp_path):
        out_file = tmp_path / "abs.json"
        assert main(["abstract", "builtin:prefetch", "-o", str(out_file)]) == 0
        data = json.loads(out_file.read_text())
        assert len(data["actors"]) == 2

    def test_abstract_failure_is_clean_error(self, capsys, fig3_file):
        assert main(["abstract", fig3_file]) == 1
        assert "error:" in capsys.readouterr().err

    def test_lint_clean(self, capsys):
        assert main(["lint", "builtin:figure3"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_reports_errors(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(
            '{"name": "bad", "actors": [{"name": "a"}, {"name": "b"}], '
            '"edges": [{"source": "a", "target": "b"}, '
            '{"source": "b", "target": "a"}]}'
        )
        assert main(["lint", str(bad)]) == 2
        assert "deadlock" in capsys.readouterr().out

    def test_gantt(self, capsys):
        assert main(["gantt", "builtin:figure1", "--horizon", "46"]) == 0
        out = capsys.readouterr().out
        assert "A1" in out and "[" in out

    def test_bottleneck(self, capsys):
        assert main(["bottleneck", "builtin:figure1"]) == 0
        out = capsys.readouterr().out
        assert "iteration period 23" in out
        assert "critical tokens" in out

    def test_schedule(self, capsys):
        assert main(["schedule", "builtin:figure3"]) == 0
        out = capsys.readouterr().out
        assert "period 7" in out
        assert "L#0" in out and "R#0" in out

    def test_dot_stdout(self, capsys):
        assert main(["dot", "builtin:figure3"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_dot_file(self, capsys, tmp_path):
        out_file = tmp_path / "g.dot"
        assert main(["dot", "builtin:figure3", "-o", str(out_file)]) == 0
        assert out_file.read_text().startswith("digraph")

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "modem" in out and "satellite" in out

    def test_builtins_listing(self, capsys):
        assert main(["builtins"]) == 0
        assert "builtin:modem" in capsys.readouterr().out

    def test_missing_file_is_clean_error(self, capsys):
        assert main(["info", "/no/such/file.json"]) == 1
        assert "error:" in capsys.readouterr().err


class TestBatchCommand:
    def test_batch_registry(self, capsys):
        assert main(["batch", "--registry", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "modem" in out and "satellite" in out
        assert "8/8 ok" in out
        assert "cache:" in out and "hit rate" in out

    def test_batch_specs_and_analyses(self, capsys):
        assert main([
            "batch", "builtin:figure3", "builtin:modem",
            "--analysis", "throughput", "latency", "--backend", "serial",
        ]) == 0
        out = capsys.readouterr().out
        assert "2/2 ok" in out

    def test_batch_warm_run_hits_cache(self, capsys):
        assert main(["batch", "builtin:figure3"]) == 0
        capsys.readouterr()
        assert main(["batch", "builtin:figure3"]) == 0
        out = capsys.readouterr().out
        assert "1 hits / 0 misses" in out

    def test_batch_reports_per_graph_failure(self, capsys, tmp_path):
        from repro.sdf.io import to_json

        bad = _inconsistent_graph()
        path = tmp_path / "bad.json"
        path.write_text(to_json(bad))
        assert main(["batch", str(path), "builtin:figure3"]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out and "1/2 ok" in out

    def test_batch_without_graphs_errors(self, capsys):
        assert main(["batch"]) == 2
        assert "no graphs" in capsys.readouterr().err

    def test_batch_zero_workers_clean_error(self, capsys):
        assert main(["batch", "builtin:figure3", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err


def _inconsistent_graph():
    from repro.sdf.graph import SDFGraph

    g = SDFGraph("bad")
    g.add_actor("A", 1)
    g.add_actor("B", 1)
    g.add_edge("A", "B", production=2, consumption=3)
    g.add_edge("B", "A", production=1, consumption=1, tokens=1)
    return g


class TestCsdfCommand:
    @pytest.fixture
    def csdf_file(self, tmp_path):
        from repro.csdf.graph import CSDFGraph
        from repro.csdf.io import to_json as csdf_to_json

        g = CSDFGraph("cli-csdf")
        g.add_actor("P", [1, 2])
        g.add_actor("C", [4])
        g.add_edge("P", "P", [1, 1], [1, 1], 1, name="self_P")
        g.add_edge("C", "C", [1], [1], 1, name="self_C")
        g.add_edge("P", "C", production=[2, 1], consumption=[3], name="data")
        g.add_edge("C", "P", production=[3], consumption=[2, 1], tokens=3, name="space")
        path = tmp_path / "g.json"
        path.write_text(csdf_to_json(g))
        return str(path)

    def test_csdf_analysis(self, capsys, csdf_file):
        assert main(["csdf", csdf_file]) == 0
        out = capsys.readouterr().out
        assert "iteration period: 7" in out
        assert "rate(P) = 2/7" in out
        assert "compact HSDF" in out

    def test_csdf_writes_hsdf(self, capsys, csdf_file, tmp_path):
        out_file = tmp_path / "compact.json"
        assert main(["csdf", csdf_file, "-o", str(out_file)]) == 0
        data = json.loads(out_file.read_text())
        assert any(a["name"].startswith("g_") for a in data["actors"])

    def test_csdf_deadlock_reported(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(
            '{"name": "bad", "type": "csdf", '
            '"actors": [{"name": "a", "execution_times": [1]}, '
            '{"name": "b", "execution_times": [1]}], '
            '"edges": [{"source": "a", "target": "b", "production": [1], "consumption": [1]}, '
            '{"source": "b", "target": "a", "production": [1], "consumption": [1]}]}'
        )
        assert main(["csdf", str(bad)]) == 1
        assert "deadlocked" in capsys.readouterr().out


class TestMapCommand:
    def test_sweep(self, capsys):
        assert main(["map", "builtin:figure3", "--max-processors", "2"]) == 0
        out = capsys.readouterr().out
        assert "guaranteed period" in out
        assert "1.00x" in out

    def test_single_mapping(self, capsys):
        assert main(["map", "builtin:figure3", "--processors", "1"]) == 0
        out = capsys.readouterr().out
        assert "guaranteed period 7" in out
        assert "utilisation 1.00" in out


class TestCacheCommand:
    def _seed(self, tmp_path, capsys):
        """One cold serial batch publishing into a store; returns its root.

        The CLI shares one process-global memory cache across ``main()``
        calls, so each stage clears it first — the disk tier is what is
        under test here.
        """
        from repro.analysis.cache import default_cache

        default_cache().clear()
        store = tmp_path / "store"
        journal = tmp_path / "journal.jsonl"
        assert main(["batch", "builtin:figure3", "--backend", "serial",
                     "--store", str(store), "--journal", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "1 published" in out
        return store, journal

    def test_batch_store_then_warm_disk_hits(self, capsys, tmp_path):
        from repro.analysis.cache import default_cache

        store, _ = self._seed(tmp_path, capsys)
        # A cold memory cache over the same store: the result comes
        # back from disk, nothing is recomputed or republished.
        default_cache().clear()
        assert main(["batch", "builtin:figure3", "--backend", "serial",
                     "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "store: 1 disk hits / 0 disk misses, 0 published" in out

    def test_cache_stats(self, capsys, tmp_path):
        store, _ = self._seed(tmp_path, capsys)
        assert main(["cache", "stats", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "records" in out and "1" in out

    def test_cache_stats_json_validates(self, capsys, tmp_path):
        from repro.obs.check import validate_store_stats

        store, _ = self._seed(tmp_path, capsys)
        assert main(["cache", "stats", "--store", str(store),
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert validate_store_stats(doc)["records"] == 1

    def test_cache_verify_clean_with_journal(self, capsys, tmp_path):
        store, journal = self._seed(tmp_path, capsys)
        assert main(["cache", "verify", "--store", str(store),
                     "--journal", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "1 valid, 0 corrupt" in out
        assert "journal: 1/1" in out

    def test_cache_verify_json_validates_and_fails_on_missing(
            self, capsys, tmp_path):
        from repro.obs.check import validate_store_verify

        store, journal = self._seed(tmp_path, capsys)
        assert main(["cache", "purge", "--store", str(store)]) == 0
        capsys.readouterr()
        report_path = tmp_path / "verify.json"
        assert main(["cache", "verify", "--store", str(store),
                     "--journal", str(journal),
                     "--json", str(report_path)]) == 1
        doc = json.loads(report_path.read_text())
        summary = validate_store_verify(doc)
        assert summary["undetected_corrupt"] == 0
        assert doc["journal"]["missing"]

    def test_cache_verify_quarantines_corruption(self, capsys, tmp_path):
        store, _ = self._seed(tmp_path, capsys)
        record = next((store / "records").rglob("*.rec"))
        record.write_bytes(b"garbage")
        assert main(["cache", "verify", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "1 quarantined now" in out and "0 undetected" in out

    def test_cache_purge_and_compact(self, capsys, tmp_path):
        store, _ = self._seed(tmp_path, capsys)
        assert main(["cache", "compact", "--store", str(store),
                     "--max-bytes", "1"]) == 0
        assert "evicted 1" in capsys.readouterr().out
        assert main(["cache", "purge", "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--store", str(store)]) == 0
        assert "records:     0" in capsys.readouterr().out
