"""Repetition vectors and consistency."""

import pytest

from repro.errors import InconsistentGraphError
from repro.graphs import TABLE1_CASES
from repro.graphs.examples import figure3_graph
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import is_consistent, iteration_length, repetition_vector


class TestKnownVectors:
    def test_homogeneous_is_all_ones(self, simple_ring):
        assert repetition_vector(simple_ring) == {"X": 1, "Y": 1, "Z": 1}

    def test_two_actor_multirate(self, two_actor_multirate):
        assert repetition_vector(two_actor_multirate) == {"A": 2, "B": 1}

    def test_figure3(self):
        assert repetition_vector(figure3_graph()) == {"L": 2, "R": 1}

    def test_samplerate_vector(self):
        from repro.graphs.dsp import sample_rate_converter

        gamma = repetition_vector(sample_rate_converter())
        assert [gamma[a] for a in ("cd", "s1", "s2", "s3", "s4", "dat")] == [
            147,
            147,
            98,
            28,
            32,
            160,
        ]

    def test_h263_decoder_vector(self):
        from repro.graphs.multimedia import h263_decoder

        gamma = repetition_vector(h263_decoder())
        assert gamma == {"vld": 1, "idct": 594, "mc": 594, "frame": 1}

    @pytest.mark.parametrize("case", TABLE1_CASES, ids=lambda c: c.name)
    def test_table1_iteration_lengths_match_paper(self, case):
        assert iteration_length(case.build()) == case.paper_traditional


class TestNormalisation:
    def test_smallest_integers(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b", production=4, consumption=6)
        # 4γa = 6γb → smallest (3, 2).
        assert repetition_vector(g) == {"a": 3, "b": 2}

    def test_chain_of_rate_changes(self):
        g = SDFGraph()
        g.add_actors("a", "b", "c")
        g.add_edge("a", "b", production=2, consumption=3)
        g.add_edge("b", "c", production=3, consumption=2)
        assert repetition_vector(g) == {"a": 3, "b": 2, "c": 3}

    def test_components_normalised_independently(self):
        g = SDFGraph()
        g.add_actors("a", "b", "c", "d")
        g.add_edge("a", "b", production=2, consumption=1)
        g.add_edge("c", "d", production=1, consumption=3)
        gamma = repetition_vector(g)
        assert gamma == {"a": 1, "b": 2, "c": 3, "d": 1}

    def test_isolated_actor_gets_one(self):
        g = SDFGraph()
        g.add_actor("lonely")
        assert repetition_vector(g) == {"lonely": 1}

    def test_propagation_against_edge_direction(self):
        # The solver must also walk backwards over in-edges.
        g = SDFGraph()
        g.add_actors("a", "b", "c")
        g.add_edge("a", "c", production=1, consumption=2)
        g.add_edge("b", "c", production=3, consumption=1)
        gamma = repetition_vector(g)
        assert gamma["a"] == 2 * gamma["c"]
        assert 3 * gamma["b"] == gamma["c"]


class TestInconsistency:
    def test_simple_inconsistent_loop(self):
        g = SDFGraph("bad")
        g.add_actors("a", "b")
        g.add_edge("a", "b", production=2, consumption=1)
        g.add_edge("b", "a", production=1, consumption=1)
        with pytest.raises(InconsistentGraphError) as excinfo:
            repetition_vector(g)
        assert excinfo.value.witness_edge is not None
        assert not is_consistent(g)

    def test_inconsistent_parallel_edges(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b", production=1, consumption=1)
        g.add_edge("a", "b", production=2, consumption=1)
        assert not is_consistent(g)

    def test_inconsistent_undirected_cycle(self):
        # a→c, b→c, a→b with rates that cannot balance.
        g = SDFGraph()
        g.add_actors("a", "b", "c")
        g.add_edge("a", "b", production=1, consumption=1)
        g.add_edge("a", "c", production=1, consumption=1)
        g.add_edge("b", "c", production=2, consumption=1)
        assert not is_consistent(g)

    def test_error_message_names_graph_and_edge(self):
        g = SDFGraph("mygraph")
        g.add_actors("a", "b")
        g.add_edge("a", "b", production=2, consumption=1, name="bad_edge")
        g.add_edge("b", "a", production=1, consumption=1)
        with pytest.raises(InconsistentGraphError, match="mygraph"):
            repetition_vector(g)

    @pytest.mark.parametrize("case", TABLE1_CASES, ids=lambda c: c.name)
    def test_all_benchmarks_consistent(self, case):
        assert is_consistent(case.build())
