"""The regression sentinel: robust verdicts over synthetic histories.

Each fixture writes a hand-built ``history.jsonl`` and asserts the
verdict — including the two acceptance cases: a 3x slowdown makes
``repro obs regress`` exit 5 naming the entry, a clean history exits 0.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.check import check_file, validate_regress
from repro.obs.regress import (
    REGRESS_SCHEMA,
    evaluate_history,
    higher_is_better,
    load_history,
    render_regress_text,
)

HOST = {"platform": "linux-x86", "python": "3.12.1", "git_sha": "a" * 40}


def _doc(suite, name, value, unit="s", baseline=None, host=HOST):
    return {
        "schema": "repro-bench-v1",
        "suite": suite,
        "written": "2026-08-08T00:00:00+00:00",
        "host": dict(host),
        "entries": [{"name": name, "unit": unit, "value": value,
                     "baseline": baseline, "meta": {}}],
    }


def _history(tmp_path, docs, name="history.jsonl"):
    path = tmp_path / name
    path.write_text("".join(json.dumps(d) + "\n" for d in docs))
    return path


def _series(values, **over):
    return [_doc("kernels", "mcm_seconds", v, **over) for v in values]


class TestDirection:
    def test_units_imply_direction(self):
        assert higher_is_better("x")
        assert higher_is_better("graphs/s")
        assert not higher_is_better("s")
        assert not higher_is_better("ratio")


class TestVerdicts:
    def test_3x_slowdown_regresses(self, tmp_path):
        path = _history(tmp_path, _series([1.0, 1.01, 0.99, 1.0, 3.0]))
        report = evaluate_history(path)
        (result,) = report["results"]
        assert result["verdict"] == "regressed"
        assert report["regressed"] == ["kernels/mcm_seconds"]
        assert result["median"] == pytest.approx(1.0, abs=0.01)
        assert "vs median" in result["reason"]
        validate_regress(report)

    def test_stable_series_is_ok(self, tmp_path):
        path = _history(tmp_path, _series([1.0, 1.02, 0.98, 1.01]))
        (result,) = evaluate_history(path)["results"]
        assert result["verdict"] == "ok"

    def test_speedup_unit_flips_direction(self, tmp_path):
        # A rate *dropping* 3x is the regression; rising is improvement.
        drop = _history(tmp_path, _series([30.0, 31.0, 29.0, 10.0],
                                          unit="graphs/s"), name="drop.jsonl")
        (result,) = evaluate_history(drop)["results"]
        assert result["verdict"] == "regressed"
        rise = _history(tmp_path, _series([30.0, 31.0, 29.0, 90.0],
                                          unit="graphs/s"), name="rise.jsonl")
        (result,) = evaluate_history(rise)["results"]
        assert result["verdict"] == "improved"

    def test_insufficient_data(self, tmp_path):
        path = _history(tmp_path, _series([1.0, 1.0]))
        (result,) = evaluate_history(path)["results"]
        assert result["verdict"] == "insufficient-data"
        assert result["samples"] == 1

    def test_host_incompatible_priors_are_excluded(self, tmp_path):
        other = {**HOST, "platform": "darwin-arm64"}
        docs = _series([0.1, 0.1, 0.1], host=other) + _series([1.0])
        (result,) = evaluate_history(_history(tmp_path, docs))["results"]
        # Three priors exist, none comparable: no drift call.
        assert result["verdict"] == "insufficient-data"
        assert result["samples"] == 0

    def test_noisy_series_refuses_a_call(self, tmp_path):
        path = _history(tmp_path, _series([1.0, 2.0, 0.5, 3.0, 0.4, 2.5]))
        (result,) = evaluate_history(path)["results"]
        assert result["verdict"] == "noisy"
        assert "noise ceiling" in result["reason"]

    def test_mad_widens_the_band_for_jittery_series(self, tmp_path):
        # MAD ~ 0.1 on median 1.0: a +0.35 excursion is within 4*MAD
        # even though it exceeds the 25% relative threshold.
        path = _history(tmp_path, _series([0.9, 1.1, 1.0, 0.85, 1.15, 1.35]))
        (result,) = evaluate_history(path)["results"]
        assert result["verdict"] == "ok"

    def test_declared_baseline_always_wins(self, tmp_path):
        # Rolling stats say "consistent with history" — but the suite's
        # own asserted ceiling is violated, and that contract wins.
        docs = _series([0.30, 0.31, 0.29]) + _series([0.32], baseline=0.25)
        (result,) = evaluate_history(_history(tmp_path, docs))["results"]
        assert result["verdict"] == "regressed"
        assert "declared baseline violated" in result["reason"]
        # Higher-is-better entries treat the baseline as a floor.
        docs = [_doc("kernels", "speedup", v, unit="x", baseline=2.0)
                for v in (3.0, 1.5)]
        results = evaluate_history(_history(tmp_path, docs,
                                            name="floor.jsonl"))["results"]
        assert results[0]["verdict"] == "regressed"
        assert "below floor" in results[0]["reason"]

    def test_window_limits_the_lookback(self, tmp_path):
        # Ancient fast samples age out of a window of 3: the recent
        # plateau is the baseline, so the newest sample is ok.
        path = _history(tmp_path, _series([0.1, 0.1, 2.0, 2.1, 1.9, 2.0]))
        (result,) = evaluate_history(path, window=3)["results"]
        assert result["verdict"] == "ok"

    def test_torn_journal_is_an_error(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(json.dumps(_doc("s", "e", 1.0)) + "\n{torn")
        with pytest.raises(ValueError, match="line 2"):
            load_history(path)


class TestReportDocument:
    def test_counts_and_ordering(self, tmp_path):
        docs = (
            _series([1.0, 1.0, 1.0, 3.0])                  # regressed
            + [_doc("cache", "hits", v, unit="ratio")
               for v in (0.9, 0.9, 0.9, 0.9)]              # ok
            + [_doc("obs", "new_metric", 1.0)]             # insufficient
        )
        report = evaluate_history(_history(tmp_path, docs))
        assert report["schema"] == REGRESS_SCHEMA
        assert report["entries"] == 3
        assert report["counts"]["regressed"] == 1
        assert report["counts"]["ok"] == 1
        assert report["counts"]["insufficient-data"] == 1
        # Loud verdicts sort first.
        assert report["results"][0]["verdict"] == "regressed"
        validate_regress(report)

    def test_text_rendering_summarises_quiet_series(self, tmp_path):
        docs = _series([1.0, 1.0, 1.0, 1.0])
        report = evaluate_history(_history(tmp_path, docs))
        quiet = render_regress_text(report)
        assert "1 ok" in quiet
        assert "mcm_seconds" not in quiet  # ok series elided
        verbose = render_regress_text(report, verbose=True)
        assert "kernels/mcm_seconds" in verbose

    def test_deterministic_for_a_given_journal(self, tmp_path):
        path = _history(tmp_path, _series([1.0, 1.0, 1.0, 3.0]))
        assert evaluate_history(path) == evaluate_history(path)


class TestCliGate:
    def test_slowdown_exits_5_and_names_the_entry(self, tmp_path, capsys):
        path = _history(tmp_path, _series([1.0, 1.01, 0.99, 3.0]))
        assert main(["obs", "regress", "--history", str(path)]) == 5
        out = capsys.readouterr().out
        assert "kernels/mcm_seconds" in out
        assert "REGRESSED" in out

    def test_clean_history_exits_0(self, tmp_path):
        path = _history(tmp_path, _series([1.0, 1.01, 0.99, 1.0]))
        assert main(["obs", "regress", "--history", str(path)]) == 0

    def test_report_only_suppresses_the_gate(self, tmp_path):
        path = _history(tmp_path, _series([1.0, 1.0, 1.0, 3.0]))
        assert main(["obs", "regress", "--history", str(path),
                     "--report-only"]) == 0

    def test_json_artifact_passes_repro_obs_check(self, tmp_path):
        path = _history(tmp_path, _series([1.0, 1.0, 1.0, 3.0]))
        out = tmp_path / "regress.json"
        assert main(["obs", "regress", "--history", str(path),
                     "--report-only", "--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == REGRESS_SCHEMA
        assert check_file(out)["regressed"] == 1

    def test_missing_history_is_a_clean_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["obs", "regress", "--history", str(missing)]) == 1

    def test_threshold_knob_reaches_the_judge(self, tmp_path):
        # +30% drift: regressed at the default 25%, ok at 50%.
        path = _history(tmp_path, _series([1.0, 1.0, 1.0, 1.3]))
        assert main(["obs", "regress", "--history", str(path)]) == 5
        assert main(["obs", "regress", "--history", str(path),
                     "--threshold", "0.5"]) == 0
