"""The lint driver: ordering, config, caching, and the analysis hooks."""

import pytest

from repro.analysis.batch import run_batch
from repro.analysis.cache import AnalysisCache
from repro.analysis.throughput import throughput
from repro.core.abstraction import Abstraction, abstract_graph
from repro.errors import DeadlockError, LintError, NotAbstractableError
from repro.graphs.examples import figure3_graph
from repro.lint import (
    LintConfig,
    all_rules,
    ensure_lint_clean,
    get_rule,
    rule,
    rule_codes,
    run_lint,
)
from repro.lint.registry import CATEGORIES, unregister
from repro.sdf.graph import SDFGraph


def deadlocked() -> SDFGraph:
    g = SDFGraph("stuck")
    g.add_actors("a", "b")
    g.add_edge("a", "b")
    g.add_edge("b", "a")
    return g


def noisy() -> SDFGraph:
    """One graph, findings in every category: disconnected (structural),
    unread-tokens (rate), zero-time-cycle (temporal)."""
    g = SDFGraph("noisy")
    g.add_actor("a", 1)
    g.add_actor("z", 0)
    g.add_edge("a", "a", tokens=5)
    g.add_edge("z", "z", tokens=1)
    return g


class TestRegistry:
    def test_at_least_15_rules_with_unique_codes(self):
        codes = rule_codes()
        assert len(codes) >= 15
        assert len(set(codes)) == len(codes)

    def test_every_rule_has_metadata(self):
        for registered in all_rules():
            meta = registered.meta
            assert meta.code and meta.summary
            assert meta.category in CATEGORIES
            assert meta.doc_url.endswith(f"#{meta.code}")

    def test_execution_order_is_structural_rate_temporal(self):
        seen = [r.meta.category for r in all_rules()]
        ranks = [CATEGORIES.index(c) for c in seen]
        assert ranks == sorted(ranks)

    def test_duplicate_code_is_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):

            @rule("deadlock", "temporal", "error", "clash")
            def _clash(ctx):
                yield  # pragma: no cover

    def test_plugin_rule_runs_and_unregisters(self):
        @rule("test-plugin", "structural", "warning", "a test-only rule")
        def _plugin(ctx):
            yield ctx.diag("test-plugin", "plugin fired")

        try:
            report = run_lint(figure3_graph(), cache=AnalysisCache())
            assert "test-plugin" in report.codes()
        finally:
            unregister("test-plugin")
        report = run_lint(figure3_graph(), cache=AnalysisCache())
        assert "test-plugin" not in report.codes()

    def test_unknown_code_lookup_is_loud(self):
        with pytest.raises(KeyError, match="no lint rule"):
            get_rule("no-such-rule")


class TestDriver:
    def test_findings_follow_category_order(self):
        report = run_lint(noisy(), cache=AnalysisCache())
        categories = [f.category for f in report.findings]
        ranks = [CATEGORIES.index(c) for c in categories]
        assert {"disconnected", "unread-tokens", "zero-time-cycle"} <= set(
            report.codes()
        )
        assert ranks == sorted(ranks)

    def test_findings_are_stamped_with_graph_name(self):
        report = run_lint(noisy(), cache=AnalysisCache())
        assert all(f.graph == "noisy" for f in report.findings)

    def test_select_restricts_to_listed_codes(self):
        config = LintConfig.build(select=["disconnected"])
        report = run_lint(noisy(), config=config, cache=AnalysisCache())
        assert set(report.codes()) == {"disconnected"}

    def test_ignore_suppresses_codes(self):
        config = LintConfig.build(ignore=["unread-tokens", "zero-time-cycle"])
        report = run_lint(noisy(), config=config, cache=AnalysisCache())
        assert set(report.codes()) == {"disconnected"}

    def test_severity_override_gates_a_warning(self):
        config = LintConfig.build(severity={"unread-tokens": "error"})
        report = run_lint(noisy(), config=config, cache=AnalysisCache())
        (finding,) = report.by_code("unread-tokens")
        assert finding.severity == "error"
        assert not report.ok

    def test_option_flows_to_rules(self):
        config = LintConfig.build(options={"unfold_budget": 2})
        report = run_lint(figure3_graph(), config=config, cache=AnalysisCache())
        assert "unfolding-blowup" in report.codes()


class TestCaching:
    def test_repeat_lint_is_served_from_cache(self):
        cache = AnalysisCache()
        g = figure3_graph()
        cold = run_lint(g, cache=cache)
        warm = run_lint(g, cache=cache)
        assert warm is cold
        assert cache.stats().hits == 1

    def test_builder_mutation_invalidates(self):
        cache = AnalysisCache()
        g = figure3_graph()
        run_lint(g, cache=cache)
        g.add_actor("extra", 1)  # fingerprint changes
        run_lint(g, cache=cache)
        assert cache.stats().hits == 0
        assert cache.stats().misses == 2

    def test_different_configs_do_not_alias(self):
        cache = AnalysisCache()
        g = noisy()
        plain = run_lint(g, cache=cache)
        selected = run_lint(
            g, config=LintConfig.build(select=["disconnected"]), cache=cache
        )
        assert len(selected.findings) < len(plain.findings)
        assert cache.stats().hits == 0

    def test_per_call_options_bypass_the_cache(self):
        cache = AnalysisCache()
        g = figure3_graph()
        run_lint(g, cache=cache, options={"unfold_budget": 2})
        assert cache.stats().lookups == 0

    def test_cache_lint_convenience(self):
        cache = AnalysisCache()
        report = cache.lint(figure3_graph())
        assert report.clean
        assert cache.lint(figure3_graph()) is report


class TestEnsureLintClean:
    def test_clean_graph_passes(self):
        report = ensure_lint_clean(figure3_graph(), cache=AnalysisCache())
        assert report.clean

    def test_errors_raise_with_report_attached(self):
        with pytest.raises(LintError) as excinfo:
            ensure_lint_clean(deadlocked(), cache=AnalysisCache())
        assert "deadlock" in str(excinfo.value)
        assert not excinfo.value.report.ok

    def test_warnings_gate_only_under_fail_on_warning(self):
        g = noisy()
        report = ensure_lint_clean(g, cache=AnalysisCache())  # warnings only
        assert report.warnings
        with pytest.raises(LintError):
            ensure_lint_clean(g, cache=AnalysisCache(), fail_on="warning")


class TestAnalysisHooks:
    def test_throughput_precheck_reports_lint_not_first_crash(self):
        with pytest.raises(DeadlockError):
            throughput(deadlocked())
        with pytest.raises(LintError):
            throughput(deadlocked(), precheck=True)

    def test_throughput_precheck_passes_clean_graph(self):
        result = throughput(figure3_graph(), precheck=True)
        assert result.cycle_time is not None

    def test_batch_lint_gate(self):
        cache = AnalysisCache()
        report = run_batch(
            [figure3_graph(), deadlocked()],
            backend="serial",
            cache=cache,
            lint="error",
        )
        ok, failed = report.ok, report.failures
        assert [r.name for r in ok] == ["figure3"]
        assert [r.error_type for r in failed] == ["LintError"]

    def test_batch_gate_warning_level(self):
        report = run_batch(
            [noisy()], backend="serial", cache=AnalysisCache(), lint="warning"
        )
        assert report.failures and report.failures[0].error_type == "LintError"

    def test_batch_rejects_bad_gate_value(self):
        with pytest.raises(ValueError, match="lint gate"):
            run_batch([figure3_graph()], lint="sometimes")

    def test_abstract_graph_refuses_unsafe_grouping(self):
        # Figure 3's L and R have unequal repetition entries (2 vs 3):
        # grouping them breaks the Definition 3 precondition.
        bad = Abstraction(
            mapping={"L": "g", "R": "g"}, index={"L": 0, "R": 1}
        )
        with pytest.raises(NotAbstractableError) as excinfo:
            abstract_graph(figure3_graph(), bad, allow_multirate=True)
        diagnostics = excinfo.value.diagnostics
        assert [d.code for d in diagnostics] == ["abstraction-unsafe-group"]
        assert diagnostics[0].data["condition"] == "equal-repetition"

    def test_abstract_graph_accepts_safe_grouping(self):
        g = SDFGraph("pipe")
        for name in "abc":
            g.add_actor(name, 1)
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("c", "a", tokens=1)
        safe = Abstraction(
            mapping={"a": "g", "b": "g", "c": "g"},
            index={"a": 0, "b": 1, "c": 2},
        )
        abstracted = abstract_graph(g, safe)
        assert abstracted.actor_count() == 1


class TestValidationShim:
    def test_validate_graph_mirrors_lint(self):
        from repro.sdf.validation import validate_graph

        report = validate_graph(noisy())
        assert {f.code for f in report.findings} == {
            "disconnected",
            "unread-tokens",
            "zero-time-cycle",
        }
        assert report.ok  # warnings only
