"""Extra robustness checks for the MCM/MCR solver family."""

import random
from fractions import Fraction

import pytest

from repro.graphs.random_sdf import random_ratio_graph
from repro.mcm import (
    RatioGraph,
    brute_force_mcr,
    howard_mcr,
    karp_mcm,
    lawler_mcr,
    yto_mcm,
)


class TestFractionalWeights:
    @pytest.mark.parametrize("seed", range(10))
    def test_ratio_solvers_on_fractional_weights(self, seed):
        rng = random.Random(40_000 + seed)
        g = RatioGraph()
        n = rng.randint(2, 6)
        order = list(range(n))
        rng.shuffle(order)
        position = {v: i for i, v in enumerate(order)}
        for _ in range(rng.randint(n, 3 * n)):
            a, b = rng.randrange(n), rng.randrange(n)
            weight = Fraction(rng.randint(-30, 30), rng.randint(1, 7))
            backward = position[a] >= position[b]
            transit = rng.randint(1, 3) if backward else rng.randint(0, 2)
            g.add_edge(a, b, weight, transit)
        expected = brute_force_mcr(g).value
        assert howard_mcr(g).value == expected
        assert lawler_mcr(g).value == expected

    @pytest.mark.parametrize("seed", range(10))
    def test_mean_solvers_on_fractional_weights(self, seed):
        rng = random.Random(50_000 + seed)
        g = RatioGraph()
        n = rng.randint(1, 5)
        for _ in range(rng.randint(1, 3 * n)):
            g.add_edge(
                rng.randrange(n),
                rng.randrange(n),
                Fraction(rng.randint(-20, 20), rng.randint(1, 5)),
                1,
            )
        expected = brute_force_mcr(g).value
        assert karp_mcm(g).value == expected
        assert yto_mcm(g).value == expected


class TestStructuralStress:
    def test_long_cycle_chain(self):
        # A single huge cycle: every solver must agree with the closed form.
        g = RatioGraph()
        n = 400
        total = 0
        for i in range(n):
            w = (i * 7) % 13
            total += w
            g.add_edge(i, (i + 1) % n, w, 1 if i == 0 else 0)
        expected = Fraction(total, 1)
        assert howard_mcr(g).value == expected
        assert lawler_mcr(g).value == expected

    def test_many_disjoint_cycles(self):
        g = RatioGraph()
        for i in range(150):
            g.add_edge(("a", i), ("b", i), i, 1)
            g.add_edge(("b", i), ("a", i), i, 1)
        assert howard_mcr(g).value == 149
        assert karp_mcm(g).value == 149
        assert yto_mcm(g).value == 149

    def test_dense_small_graph(self):
        g = RatioGraph()
        n = 6
        for a in range(n):
            for b in range(n):
                g.add_edge(a, b, (a * n + b) % 11, 1)
        expected = brute_force_mcr(g).value
        for solver in (karp_mcm, yto_mcm, howard_mcr, lawler_mcr):
            assert solver(g).value == expected

    def test_howard_iteration_cap(self):
        g = RatioGraph()
        g.add_edge("a", "a", 1, 1)
        with pytest.raises(RuntimeError):
            howard_mcr(g, max_iterations=0)

    def test_self_loop_heavy_graph(self):
        g = RatioGraph()
        for i in range(30):
            g.add_edge(i, i, i, 1 + (i % 3))
        # max over i of i/(1 + i%3): i=28 -> 28/2=14, i=27->27/1=27, i=29->29/3
        assert howard_mcr(g).value == 27
        assert lawler_mcr(g).value == 27
