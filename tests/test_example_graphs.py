"""The paper's figure graphs and synthetic families."""

from fractions import Fraction

import pytest

from repro.analysis.throughput import throughput
from repro.errors import ValidationError
from repro.graphs.examples import (
    figure2_abstraction,
    figure2_graph,
    figure3_graph,
    section41_abstraction,
    section41_example,
)
from repro.graphs.synthetic import (
    homogeneous_pipeline,
    regular_prefetch,
    regular_prefetch_abstraction,
    remote_memory_abstraction,
    remote_memory_access,
)
from repro.sdf.repetition import repetition_vector
from repro.sdf.schedule import is_live


class TestRegularPrefetch:
    def test_default_is_section41(self):
        g = section41_example()
        assert g.actor_count() == 10  # A1..A6, B1..B4
        times = g.execution_times
        assert [times[f"A{i}"] for i in range(1, 7)] == [2, 2, 5, 5, 3, 3]
        assert all(times[f"B{i}"] == 4 for i in range(1, 5))

    @pytest.mark.parametrize("n", [5, 6, 8, 12, 24, 40])
    def test_throughput_formula_5n_minus_7(self, n):
        # Section 4.1: "for a graph with n copies of the Ai actor, the
        # throughput is 1/(5n−7)".
        result = throughput(regular_prefetch(n))
        assert result.cycle_time == 5 * n - 7
        assert result.of("A1") == Fraction(1, 5 * n - 7)

    def test_homogeneous_and_live(self):
        g = regular_prefetch(9)
        assert g.is_homogeneous()
        assert is_live(g)

    def test_custom_times(self):
        g = regular_prefetch(4, a_times=[1, 1, 1, 1], b_time=1)
        assert throughput(g).cycle_time == 4  # the A ring dominates

    def test_too_small_rejected(self):
        with pytest.raises(ValidationError):
            regular_prefetch(3)

    def test_wrong_time_count_rejected(self):
        with pytest.raises(ValidationError):
            regular_prefetch(5, a_times=[1, 2, 3])

    def test_abstraction_covers(self):
        n = 7
        ab = regular_prefetch_abstraction(n)
        ab.validate(regular_prefetch(n))
        assert ab.phase_count == n


class TestFigure2:
    def test_repetition_is_homogeneous(self):
        assert set(repetition_vector(figure2_graph()).values()) == {1}

    def test_abstraction_valid(self):
        figure2_abstraction().validate(figure2_graph())

    def test_b_group_has_dummy_phase(self):
        ab = figure2_abstraction()
        # N = 3 while B has only two members: B's phase 2 is a dummy
        # firing, exactly the situation Definition 4 allows.
        assert ab.phase_count == 3
        assert len(ab.groups()["B"]) == 2


class TestFigure3:
    def test_iteration_is_three_firings(self):
        gamma = repetition_vector(figure3_graph())
        assert gamma == {"L": 2, "R": 1}

    def test_four_initial_tokens(self):
        assert figure3_graph().total_tokens() == 4

    def test_custom_times(self):
        g = figure3_graph(left_time=5, right_time=2)
        assert g.execution_time("L") == 5
        assert throughput(g).cycle_time == 12  # 2·5 + 2 on the L loop chain


class TestRemoteMemory:
    def test_default_matches_paper_workload(self):
        g = remote_memory_access()
        # 1584 computations plus two CA columns.
        assert g.actor_count() == 3 * 1584

    @pytest.mark.parametrize("n", [4, 7, 10])
    def test_live_and_homogeneous(self, n):
        g = remote_memory_access(n)
        assert g.is_homogeneous()
        assert is_live(g)

    def test_compute_bound_cycle_time(self):
        g = remote_memory_access(10, compute_time=100, ca_time=40)
        assert throughput(g).cycle_time == 1000  # n · compute

    def test_network_bound_cycle_time(self):
        g = remote_memory_access(8, compute_time=10, ca_time=40)
        # Prefetch chains around the ring: 4 hops × (10 + 80) = 360.
        assert throughput(g).cycle_time == 360

    def test_too_few_blocks_rejected(self):
        with pytest.raises(ValidationError):
            remote_memory_access(2)

    def test_abstraction_matches(self):
        n = 12
        remote_memory_abstraction(n).validate(remote_memory_access(n))


class TestPipeline:
    def test_cycle_time_formula(self):
        g = homogeneous_pipeline(3, execution_times=[2, 5, 2], tokens=3)
        assert throughput(g).cycle_time == 5  # max(9/3, 5)

    def test_single_stage(self):
        g = homogeneous_pipeline(1, execution_times=[4])
        assert throughput(g).cycle_time == 4

    def test_bad_arguments(self):
        with pytest.raises(ValidationError):
            homogeneous_pipeline(0)
        with pytest.raises(ValidationError):
            homogeneous_pipeline(2, execution_times=[1])
