"""Property suite: every started span closes, whatever unwinds through it.

Hypothesis generates random call trees — each node opens a span, runs
its children, and may raise :class:`AnalysisTimeout`,
:class:`AnalysisCancelled` or a plain :class:`ValueError`; each node
independently chooses whether to swallow its children's exceptions (the
tiered-fallback pattern in ``resilience.py``) or let them unwind.  The
tracer must come out with zero open spans, every recorded span closed
with consistent parent/interval structure (checked by the JSONL schema
validator), and the error kind stamped on exactly the spans something
raised through.
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.errors import AnalysisCancelled, AnalysisTimeout
from repro.obs.check import validate_span_jsonl
from repro.obs.trace import Tracer, current_tracer, span

RAISERS = {
    "timeout": lambda: AnalysisTimeout("budget exhausted", stage="s"),
    "cancel": lambda: AnalysisCancelled("cancelled", stage="s"),
    "value": lambda: ValueError("injected fault"),
}

node = st.fixed_dictionaries({
    "raises": st.sampled_from([None, None, None, "timeout", "cancel", "value"]),
    "catches": st.booleans(),
})

tree = st.recursive(
    node.map(lambda n: dict(n, children=[])),
    lambda children: st.builds(
        lambda n, kids: dict(n, children=kids),
        node, st.lists(children, max_size=3),
    ),
    max_leaves=12,
)


def run_tree(root, depth=0):
    """Open a span for ``root``, recurse, then raise per its marker."""
    with span(f"node-{depth}", catches=root["catches"]):
        for child in root["children"]:
            if root["catches"]:
                try:
                    run_tree(child, depth + 1)
                except (AnalysisTimeout, AnalysisCancelled, ValueError):
                    pass
            else:
                run_tree(child, depth + 1)
        if root["raises"] is not None:
            raise RAISERS[root["raises"]]()


@settings(max_examples=60, deadline=None)
@given(tree)
def test_every_started_span_closes(program):
    tracer = Tracer()
    with tracer:
        try:
            run_tree(program)
        except (AnalysisTimeout, AnalysisCancelled, ValueError):
            pass
    assert current_tracer() is None
    assert tracer.open_spans == 0
    spans = tracer.spans()
    assert spans, "the root span must always be recorded"
    assert all(s.closed and s.end is not None for s in spans)
    # Export must satisfy the schema: ids unique, children inside their
    # parents' intervals, parents recorded before use.
    jsonl = "\n".join(json.dumps(row) for row in tracer.export_spans())
    summary = validate_span_jsonl(jsonl)
    assert summary["spans"] == len(spans)


@settings(max_examples=60, deadline=None)
@given(tree)
def test_error_kind_stamped_on_raising_spans(program):
    tracer = Tracer()
    with tracer:
        try:
            run_tree(program)
        except (AnalysisTimeout, AnalysisCancelled, ValueError):
            pass
    expected = {
        "timeout": "AnalysisTimeout",
        "cancel": "AnalysisCancelled",
        "value": "ValueError",
    }

    # Spans are recorded at close, so the trace is a post-order walk of
    # the executed part of the tree; replay it alongside the program.
    spans = iter(tracer.spans())

    def walk(node, depth=0):
        bubbled = None
        for child in node["children"]:
            kind = walk(child, depth + 1)
            if kind is not None and not node["catches"]:
                bubbled = kind  # unwound through us; later children never ran
                break
        s = next(spans)
        effective = bubbled if bubbled is not None else node["raises"]
        if effective is not None:
            assert s.args.get("error") == expected[effective], s.args
        else:
            assert "error" not in s.args
        return effective

    walk(program)
    # Every recorded span was matched to an executed tree node.
    assert next(spans, None) is None


@settings(max_examples=30, deadline=None)
@given(tree, st.integers(min_value=0, max_value=2**32 - 1))
def test_span_ids_unique_and_parented(program, _seed):
    tracer = Tracer()
    with tracer:
        try:
            run_tree(program)
        except (AnalysisTimeout, AnalysisCancelled, ValueError):
            pass
    spans = tracer.spans()
    ids = [s.id for s in spans]
    assert len(ids) == len(set(ids))
    known = set(ids)
    roots = 0
    for s in spans:
        if s.parent_id is None:
            roots += 1
        else:
            assert s.parent_id in known
    assert roots == 1
