"""Gap-filling edge-case tests across modules."""

from fractions import Fraction

import pytest

from repro.errors import ValidationError
from repro.maxplus.algebra import EPSILON
from repro.maxplus.matrix import MaxPlusMatrix, MaxPlusVector
from repro.sdf.graph import SDFGraph


class TestMatrixEdgeCases:
    def test_epsilons_matrix(self):
        m = MaxPlusMatrix.epsilons(2, 3)
        assert m.nrows == 2 and m.ncols == 3
        assert m.finite_entry_count() == 0

    def test_from_columns_empty(self):
        m = MaxPlusMatrix.from_columns([])
        assert m.nrows == 0 and m.ncols == 0

    def test_from_columns_mismatch(self):
        with pytest.raises(ValueError):
            MaxPlusMatrix.from_columns(
                [MaxPlusVector([1]), MaxPlusVector([1, 2])]
            )

    def test_multiply_dimension_mismatch(self):
        with pytest.raises(ValueError):
            MaxPlusMatrix.identity(2).multiply(MaxPlusMatrix.identity(3))

    def test_max_with_dimension_mismatch(self):
        with pytest.raises(ValueError):
            MaxPlusMatrix.identity(2).max_with(MaxPlusMatrix.identity(3))

    def test_star_requires_square(self):
        with pytest.raises(ValueError):
            MaxPlusMatrix([[1, 2]]).star()

    def test_row_and_column_accessors(self):
        m = MaxPlusMatrix([[1, 2], [3, 4]])
        assert m.row(1) == MaxPlusVector([3, 4])
        assert m.column(0) == MaxPlusVector([1, 3])

    def test_empty_matrix_apply(self):
        m = MaxPlusMatrix([])
        assert m.apply(MaxPlusVector([])) == MaxPlusVector([])

    def test_repr_contains_entries(self):
        assert "7" in repr(MaxPlusMatrix([[7]]))

    def test_vector_repr(self):
        assert "3" in repr(MaxPlusVector([3]))


class TestGraphEdgeCases:
    def test_fraction_execution_time_analysis(self):
        from repro.analysis.throughput import throughput

        g = SDFGraph()
        g.add_actor("a", Fraction(3, 2))
        g.add_edge("a", "a", tokens=1)
        assert throughput(g).cycle_time == Fraction(3, 2)
        assert throughput(g, method="hsdf").cycle_time == Fraction(3, 2)
        assert throughput(g, method="simulation").cycle_time == Fraction(3, 2)

    def test_set_tokens_on_unknown_edge(self):
        g = SDFGraph()
        with pytest.raises(ValidationError):
            g.set_tokens("ghost", 1)

    def test_large_rates(self):
        from repro.sdf.repetition import repetition_vector

        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b", production=1000, consumption=999)
        gamma = repetition_vector(g)
        assert gamma == {"a": 999, "b": 1000}

    def test_parallel_self_loops(self):
        from repro.analysis.throughput import throughput

        g = SDFGraph()
        g.add_actor("a", 4)
        g.add_edge("a", "a", tokens=1)
        g.add_edge("a", "a", tokens=2)
        assert throughput(g).cycle_time == 4

    def test_actor_with_only_outgoing_parallel_edges(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "a", tokens=1)
        g.add_edge("a", "b")
        g.add_edge("a", "b", tokens=3)
        g.add_edge("b", "b", tokens=1)
        from repro.sdf.schedule import is_live

        assert is_live(g)


class TestConversionEdgeCases:
    def test_single_actor_single_token(self):
        from repro.analysis.throughput import throughput
        from repro.core.hsdf_conversion import convert_to_hsdf

        g = SDFGraph()
        g.add_actor("only", 6)
        g.add_edge("only", "only", tokens=1)
        conv = convert_to_hsdf(g)
        assert conv.actor_count == 1
        assert conv.token_count == 1
        assert throughput(conv.graph).cycle_time == 6

    def test_token_never_consumed_within_iteration(self):
        # Extra tokens beyond one iteration's consumption: the matrix
        # includes identity-like rows for the resting tokens.
        from repro.core.symbolic import symbolic_iteration

        g = SDFGraph()
        g.add_actor("a", 2)
        g.add_edge("a", "a", tokens=3)  # consumes 1 per iteration (γ=1)
        iteration = symbolic_iteration(g)
        m = iteration.matrix
        # Slots shift: new slot 0 holds old token 1, etc.
        assert m[0, 1] == 0 and m[0, 0] == EPSILON
        assert m[1, 2] == 0
        assert m[2, 0] == 2  # the fired token returns at +T

    def test_sink_actor_token_influence_dies(self):
        from repro.core.hsdf_conversion import convert_to_hsdf

        g = SDFGraph()
        g.add_actor("a", 1)
        g.add_actor("sink", 5)
        g.add_edge("a", "a", tokens=1)
        g.add_edge("a", "sink")
        g.add_edge("sink", "sink", tokens=1)
        conv = convert_to_hsdf(g)
        # Both tokens persist, the conversion stays live and equivalent.
        from repro.analysis.throughput import throughput

        assert throughput(conv.graph, method="hsdf").cycle_time == throughput(g).cycle_time


class TestCsdfEdgeCases:
    def test_unknown_actor_lookup(self):
        from repro.csdf.graph import CSDFGraph

        g = CSDFGraph()
        with pytest.raises(ValidationError):
            g.actor("nope")
        with pytest.raises(ValidationError):
            g.edge("nope")

    def test_duplicate_names(self):
        from repro.csdf.graph import CSDFGraph

        g = CSDFGraph()
        g.add_actor("a", [1])
        with pytest.raises(ValidationError):
            g.add_actor("a", [1])
        g.add_edge("a", "a", [1], [1], 1, name="e")
        with pytest.raises(ValidationError):
            g.add_edge("a", "a", [1], [1], 1, name="e")

    def test_components(self):
        from repro.csdf.graph import CSDFGraph

        g = CSDFGraph()
        g.add_actor("a", [1])
        g.add_actor("b", [1])
        assert len(g.undirected_components()) == 2

    def test_repr(self):
        from repro.csdf.graph import CSDFGraph

        g = CSDFGraph("named")
        assert "named" in repr(g)


class TestCliSaveFormats:
    def test_convert_to_dot_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "g.dot"
        assert main(["convert", "builtin:figure3", "-o", str(out)]) == 0
        assert out.read_text().startswith("digraph")
