"""Setuptools entry point.

Kept alongside pyproject.toml because this offline environment lacks the
``wheel`` package that PEP 660 editable installs require; with setup.py
present, ``pip install -e .`` falls back to the legacy editable path.
"""

from setuptools import setup

setup()
