#!/usr/bin/env python3
"""Design-space exploration: map an application onto 1..N processors.

The paper's motivating context (references [3, 13, 16]): model the
application *and* its platform binding as one timed SDF graph and read
off guaranteed throughput.  This script maps the H.263 encoder onto a
growing processor count with a greedy load balancer, prints the
guaranteed frame period and per-processor utilisation for each design
point, and shows where the application's own critical cycle becomes the
bottleneck.

Run:  python examples/multiprocessor_mapping.py
"""

from fractions import Fraction

from repro import throughput
from repro.graphs.multimedia import h263_encoder
from repro.mapping import (
    greedy_load_balance,
    mapped_throughput,
    processor_utilisation,
    sweep_processor_counts,
)


def main() -> None:
    g = h263_encoder()
    unbound = throughput(g)
    print(f"application: {g}")
    print(f"application-limited frame period (unbounded resources): "
          f"{unbound.cycle_time}\n")

    print(f"{'procs':>6} {'frame period':>13} {'speedup':>8}  utilisation per processor")
    points = sweep_processor_counts(g, max_processors=5)
    base = points[0].cycle_time
    for point in points:
        util = processor_utilisation(g, point.mapping)
        rendered = ", ".join(
            f"{p}={float(u):.2f}" for p, u in sorted(util.items())
        )
        print(
            f"{point.processors:>6} {str(point.cycle_time):>13} "
            f"{float(base / point.cycle_time):>7.2f}x  {rendered}"
        )

    print("\nGuarantees never beat the application's own bound "
          f"({unbound.cycle_time}); once the critical cycle dominates, "
          "extra processors stop helping.")

    # The binding machinery composes with the paper's conversion: the
    # bound graph is an SDF graph like any other.
    from repro.core.hsdf_conversion import convert_to_hsdf
    from repro.mapping.binding import bind

    mapping = greedy_load_balance(g, 3)
    bound = bind(g, mapping)
    compact = convert_to_hsdf(bound)
    print(f"\nbinding-aware graph: {bound.actor_count()} actors -> compact "
          f"HSDF with {compact.actor_count} actors "
          f"(traditional expansion would need Σγ = "
          f"{sum(throughput(bound).repetition.values())})")
    assert (
        throughput(compact.graph, method='hsdf').cycle_time
        == mapped_throughput(g, mapping).cycle_time
    )


if __name__ == "__main__":
    main()
