#!/usr/bin/env python3
"""The two SDF-to-HSDF conversions side by side (Section 6, Table 1).

For each application of the paper's benchmark suite this script runs

* the traditional conversion (one actor per firing — Σγ actors), and
* the paper's symbolic conversion (at most N(N+2) actors for N initial
  tokens),

and cross-checks that both preserve the iteration period exactly.

Run:  python examples/hsdf_conversion_tour.py
"""

import time

from repro import convert_to_hsdf, throughput, traditional_hsdf
from repro.graphs import TABLE1_CASES
from repro.sdf.repetition import iteration_length


def main() -> None:
    header = (
        f"{'test case':<24} {'trad.':>7} {'new':>5} {'ratio':>7} "
        f"{'tokens':>6} {'cycle time':>12} {'ms':>7}"
    )
    print(header)
    print("-" * len(header))
    for case in TABLE1_CASES:
        g = case.build()
        traditional_size = iteration_length(g)

        start = time.perf_counter()
        compact = convert_to_hsdf(g)
        elapsed_ms = (time.perf_counter() - start) * 1000

        lam = throughput(compact.graph, method="hsdf").cycle_time
        assert lam == throughput(g, method="symbolic").cycle_time

        # Cross-check against the traditional expansion where tractable.
        if traditional_size <= 1200:
            assert lam == throughput(traditional_hsdf(g), method="hsdf").cycle_time

        print(
            f"{case.name:<24} {traditional_size:>7} {compact.actor_count:>5} "
            f"{traditional_size / compact.actor_count:>7.2f} "
            f"{compact.token_count:>6} {str(lam):>12} {elapsed_ms:>7.1f}"
        )
    print("\n(paper Table 1 ratios: 119, 18.3, 0.23, 114, 3.38, 279, 19.7, 20.8)")


if __name__ == "__main__":
    main()
