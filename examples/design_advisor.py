#!/usr/bin/env python3
"""An optimisation session: bottleneck → sensitivity → buffers → schedule.

A realistic designer workflow on the CD-to-DAT sample-rate converter:

1. where is the bottleneck?  (critical-cycle report)
2. which actor is worth speeding up, and by how much does each help?
   (exact sensitivities and slacks)
3. how much buffering does the rate target need?  (capacity synthesis)
4. ship it: a rate-optimal static periodic schedule.

Run:  python examples/design_advisor.py
"""

from fractions import Fraction

from repro import bottleneck, throughput
from repro.analysis.buffer import buffer_aware_throughput
from repro.analysis.pareto import capacities_for_throughput, explore_buffer_throughput
from repro.analysis.sensitivity import sensitivity, slack
from repro.analysis.periodic_schedule import rate_optimal_schedule
from repro.graphs.dsp import sample_rate_converter


def main() -> None:
    g = sample_rate_converter()
    base = throughput(g)
    print(f"application: {g}")
    print(f"iteration period: {base.cycle_time} "
          f"(one iteration = 147 CD frames -> 160 DAT frames)\n")

    print("1. bottleneck")
    report = bottleneck(g)
    print(f"   {report.describe()}\n")

    print("2. sensitivities (dλ/dT per actor) and slack of the others")
    sens = sensitivity(g)
    for actor in g.actor_names:
        derivative = sens.derivative[actor]
        if derivative > 0:
            print(f"   {actor:>4}: critical, dλ/dT = {derivative}")
        else:
            print(f"   {actor:>4}: slack {slack(g, actor)} per firing")
    critical = max(sens.derivative, key=lambda a: sens.derivative[a])
    print(f"   -> speeding up {critical!r} pays off {sens.derivative[critical]}x\n")

    print("3. buffer capacities for the maximal rate")
    capacities = capacities_for_throughput(g, base.cycle_time)
    achieved = buffer_aware_throughput(g, capacities).cycle_time
    print(f"   capacities {capacities} (total {sum(capacities.values())})")
    print(f"   achieved period {achieved} == unbounded optimum "
          f"{base.cycle_time}: {achieved == base.cycle_time}")
    points = explore_buffer_throughput(g)
    print(f"   explored {len(points)} points from minimal-live "
          f"(period {points[0].cycle_time}) to optimal\n")

    print("4. rate-optimal static periodic schedule (first offsets)")
    schedule = rate_optimal_schedule(g)
    print(f"   period {schedule.period}")
    shown = 0
    for (actor, index), offset in sorted(schedule.offsets.items(), key=lambda kv: kv[1]):
        print(f"   t = {str(offset):>6}  {actor}#{index}")
        shown += 1
        if shown >= 8:
            remaining = len(schedule.offsets) - shown
            print(f"   … {remaining} more firings per period")
            break


if __name__ == "__main__":
    main()
