#!/usr/bin/env python3
"""Quickstart: build a timed SDF graph and run every core analysis.

This walks the public API end to end on the paper's Figure 3 graph:
repetition vector, schedule, throughput (three independent back-ends),
latency, the traditional HSDF expansion and the paper's compact
conversion.

Run:  python examples/quickstart.py
"""

from repro import (
    SDFGraph,
    convert_to_hsdf,
    latency,
    repetition_vector,
    sequential_schedule,
    throughput,
    traditional_hsdf,
)


def build_graph() -> SDFGraph:
    """The two-actor multirate graph of Figure 3 of the paper."""
    g = SDFGraph("figure3")
    g.add_actor("L", execution_time=3)
    g.add_actor("R", execution_time=1)
    g.add_edge("R", "L", production=2, consumption=1, tokens=2)
    g.add_edge("L", "L", tokens=1)  # self-loop: no auto-concurrency
    g.add_edge("L", "R", production=1, consumption=2)
    g.add_edge("R", "R", tokens=1)
    return g


def main() -> None:
    g = build_graph()
    print(f"graph: {g}")

    gamma = repetition_vector(g)
    print(f"repetition vector: {gamma}")
    print(f"one iteration: {sequential_schedule(g)}")

    for method in ("symbolic", "simulation", "hsdf"):
        result = throughput(g, method=method)
        rates = {a: str(r) for a, r in result.per_actor.items()}
        print(f"throughput [{method:10s}]: cycle time {result.cycle_time}, rates {rates}")

    lat = latency(g)
    print(f"latency: makespan {lat.makespan}, first completions "
          f"{ {a: str(v) for a, v in lat.first_completion.items()} }")

    traditional = traditional_hsdf(g)
    print(f"traditional HSDF: {traditional.actor_count()} actors, "
          f"{traditional.edge_count()} edges")

    compact = convert_to_hsdf(g)
    print(f"compact HSDF (Algorithm 1): {compact.actor_count} actors, "
          f"{compact.edge_count} edges, {compact.token_count} tokens")
    print("iteration matrix (ε shown as '.'):")
    print(compact.matrix.pretty())


if __name__ == "__main__":
    main()
