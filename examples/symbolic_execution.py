#!/usr/bin/env python3
"""Step-by-step symbolic execution — the Figure 3 walkthrough of the paper.

Reproduces the narration of Section 6 literally: every initial token
starts as a symbolic stamp t_k; firing an actor takes the max of the
consumed stamps plus its execution time; after one iteration each token
slot holds an expression max_j (t_j + g_jk) — one column of the max-plus
iteration matrix.

Run:  python examples/symbolic_execution.py
"""

from repro.core.symbolic import symbolic_iteration
from repro.graphs.examples import figure3_graph
from repro.maxplus.algebra import EPSILON
from repro.maxplus.spectral import eigenvalue


#: Pretty names matching the paper's t1..t4 (our canonical enumeration
#: orders the two R→L tokens first, then L's and R's self-loop tokens).
PAPER_NAMES = {0: "t1", 1: "t3", 2: "t2", 3: "t4"}


def render(stamp) -> str:
    terms = []
    for index, value in enumerate(stamp):
        if value == EPSILON:
            continue
        name = PAPER_NAMES[index]
        terms.append(name if value == 0 else f"{name}+{value}")
    return "max(" + ", ".join(terms) + ")" if len(terms) > 1 else terms[0]


def main() -> None:
    g = figure3_graph()
    print(f"graph: {g} — iteration = two firings of L, one of R\n")

    iteration = symbolic_iteration(g, schedule=["L", "L", "R"])
    for (actor, k), start in iteration.firing_starts.items():
        end = iteration.firing_completions[(actor, k)]
        print(f"firing {actor}#{k}: starts at {render(start)}")
        print(f"            ends  at {render(end)}")
    print()

    print("after one iteration, the token slots hold:")
    for k, token in enumerate(iteration.token_ids):
        print(f"  {PAPER_NAMES[k]}' = {render(iteration.matrix.row(k))}")
    print()

    lam = eigenvalue(iteration.matrix)
    print(f"max-plus eigenvalue of the iteration matrix: {lam}")
    print(f"=> iteration period {lam}, throughput of L = 2/{lam}, of R = 1/{lam}")
    print("(paper: 'the left actor fires consuming tokens labelled t1 and t2' —")
    print(" its firing ends at max(t1+3, t2+3), the second at max(t1+6, t2+6, t3+3))")


if __name__ == "__main__":
    main()
