#!/usr/bin/env python3
"""Scenario-aware worst case: a video decoder with I- and P-frames.

The machinery behind the paper's Algorithm 1 (its reference [7],
"Synchronous dataflow scenarios"): each frame type is an SDF scenario
over the same persistent pipeline tokens, a protocol FSM constrains
frame orders (at least three P-frames between I-frames, say), and the
guaranteed decoder rate is the worst case over all admissible infinite
frame sequences — which can be *better* than assuming the worst frame
every time, and *worse* than either frame type alone when eigenvectors
mismatch.

Run:  python examples/scenario_worst_case.py
"""

from repro import SDFGraph, throughput
from repro.scenarios import (
    Scenario,
    ScenarioFSM,
    sequence_cycle_time,
    worst_case_cycle_time,
)


def frame_scenario(name: str, parse_time: int, decode_time: int, render_time: int) -> Scenario:
    """A 3-stage decode pipeline; tokens persist across frames."""
    g = SDFGraph(name)
    g.add_actor("parse", parse_time)
    g.add_actor("decode", decode_time)
    g.add_actor("render", render_time)
    g.add_edge("parse", "parse", tokens=1, name="t_parse")
    g.add_edge("parse", "decode", name="pd")
    g.add_edge("decode", "decode", tokens=1, name="t_decode")
    g.add_edge("decode", "render", name="dr")
    g.add_edge("render", "render", tokens=1, name="t_render")
    g.add_edge("render", "parse", tokens=2, name="frame_buffer")
    return Scenario(name, g)


def main() -> None:
    scenarios = {
        # I-frames: heavy parse/decode; P-frames: light but render-bound.
        "I": frame_scenario("I", parse_time=7, decode_time=9, render_time=2),
        "P": frame_scenario("P", parse_time=2, decode_time=3, render_time=4),
    }
    for name, scenario in scenarios.items():
        ct = throughput(scenario.graph).cycle_time
        print(f"scenario {name}: period {ct} if repeated forever")

    print("\nprotocol: an I-frame, then at least three P-frames")
    fsm = ScenarioFSM("i")
    fsm.add_transition("i", "I", "p1")
    fsm.add_transition("p1", "P", "p2")
    fsm.add_transition("p2", "P", "p3")
    fsm.add_transition("p3", "P", "p*")
    fsm.add_transition("p*", "P", "p*")
    fsm.add_transition("p*", "I", "p1")

    result = worst_case_cycle_time(scenarios, fsm)
    print(f"worst-case period per frame: {result.cycle_time} "
          f"(throughput {result.throughput})")
    print(f"witness frame pattern: {' '.join(result.witness)} "
          f"(explored {result.explored} states)")

    print("\nsanity: a few concrete periodic patterns")
    for pattern in (("I", "P", "P", "P"), ("I", "P", "P", "P", "P", "P"), ("P",)):
        print(f"  {' '.join(pattern):<14} -> {sequence_cycle_time(scenarios, pattern)}")

    print("\nthe naive bound (every frame as slow as the slowest mode) "
          f"would claim {max(throughput(s.graph).cycle_time for s in scenarios.values())};"
          "\nthe scenario analysis proves the protocol sustains "
          f"{result.cycle_time} per frame.")


if __name__ == "__main__":
    main()
