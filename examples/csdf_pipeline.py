#!/usr/bin/env python3
"""Cyclo-static dataflow: the paper's reductions beyond plain SDF.

A CSDF actor cycles through phases with different rates and execution
times.  Because one iteration is still a max-plus matrix over the
initial tokens, the compact HSDF conversion (Algorithm 1) applies
verbatim.  This script models a cyclo-static downsampler pipeline,
computes its exact throughput, converts it with the paper's machinery,
and compares against the conservative SDF phase-aggregation.

Run:  python examples/csdf_pipeline.py
"""

from repro import throughput
from repro.csdf import (
    CSDFGraph,
    csdf_repetition_vector,
    csdf_throughput,
    csdf_to_hsdf,
    csdf_to_sdf_approximation,
)


def build_pipeline() -> CSDFGraph:
    """Source → cyclo-static 3:1 downsampler → sink.

    The downsampler consumes one sample per phase but only its third
    phase produces an output and does the heavy filtering work.
    """
    g = CSDFGraph("csdf-downsampler")
    g.add_actor("src", [2])
    g.add_actor("down", [1, 1, 5])   # light, light, filter-and-emit
    g.add_actor("snk", [3])
    for actor in ("src", "down", "snk"):
        phases = g.phase_count(actor)
        g.add_edge(actor, actor, [1] * phases, [1] * phases, 1, name=f"self_{actor}")
    g.add_edge("src", "down", production=[1], consumption=[1, 1, 1], name="in")
    g.add_edge("down", "snk", production=[0, 0, 1], consumption=[1], name="out")
    g.add_edge("snk", "src", production=[3], consumption=[1], tokens=3, name="pace")
    return g


def main() -> None:
    g = build_pipeline()
    print(f"graph: {g}")
    gamma = csdf_repetition_vector(g)
    print(f"repetition vector (firings/iteration): {gamma}")

    exact = csdf_throughput(g)
    print(f"exact iteration period: {exact.cycle_time}")
    print(f"rates: { {a: str(r) for a, r in exact.per_actor.items()} }")

    compact = csdf_to_hsdf(g)
    print(f"\ncompact HSDF (Algorithm 1, unchanged): {compact.actor_count} actors, "
          f"{compact.token_count} tokens "
          f"(phase expansion would need {sum(gamma.values())} actors)")
    check = throughput(compact.graph, method="hsdf")
    print(f"compact HSDF iteration period: {check.cycle_time} "
          f"(matches: {check.cycle_time == exact.cycle_time})")

    approx = throughput(csdf_to_sdf_approximation(g))
    print(f"\nSDF phase-aggregation bound: {approx.cycle_time} "
          f">= exact {exact.cycle_time} (conservative, "
          f"{float(approx.cycle_time / exact.cycle_time):.2f}x pessimistic)")


if __name__ == "__main__":
    main()
