#!/usr/bin/env python3
"""Abstraction on the remote-memory prefetch model (Sections 4-5, Fig. 1/5).

The motivating scenario of the paper: a block-based video algorithm whose
input data is pre-fetched over a network-on-chip.  The generated model has
thousands of near-identical actors; the abstraction collapses it to a
handful while *provably* under-estimating the throughput (Theorem 1).

This script

1. builds the Figure 1(a) family at several sizes,
2. discovers the grouping automatically (all Ai → A, all Bi → B),
3. verifies conservativity mechanically (dominance of the unfolding plus
   an exact throughput comparison), and
4. reproduces the Section 4.1 numbers: throughput 1/(5n−7), bound 1/(5n),
   a relative error that vanishes as n grows,
5. repeats the exercise on the Figure 5 model (1584 block computations)
   where the abstraction is throughput-*exact*.

Run:  python examples/prefetch_abstraction.py
"""

from fractions import Fraction

from repro import abstract_graph, discover_abstraction, prune_redundant_edges, throughput
from repro.core.conservativity import verify_abstraction
from repro.graphs.synthetic import (
    regular_prefetch,
    remote_memory_abstraction,
    remote_memory_access,
)


def prefetch_family() -> None:
    print("=== Figure 1: regular prefetch graph, growing frame size ===")
    print(f"{'n':>5} {'actors':>7} {'abstract':>9} {'cycle':>7} {'bound':>7} {'rel.err':>9}")
    for n in (6, 12, 24, 48, 96):
        g = regular_prefetch(n)
        abstraction = discover_abstraction(g)  # groups by the Ai/Bi names
        cert = verify_abstraction(g, abstraction)
        assert cert.conservative, "Theorem 1 violated?!"
        print(
            f"{n:>5} {g.actor_count():>7} {cert.abstract.actor_count():>9} "
            f"{str(cert.original_cycle_time):>7} {str(cert.bound_cycle_time):>7} "
            f"{float(cert.relative_error):>9.4f}"
        )
    print("(paper: cycle = 5n-7, bound = 5n, error -> 0 as n grows)\n")


def remote_memory() -> None:
    print("=== Figure 5: remote memory access, 1584 block computations ===")
    n = 1584
    g = remote_memory_access(n)
    print(f"original model: {g.actor_count()} actors, {g.edge_count()} edges")

    abstraction = remote_memory_abstraction(n)
    abstract = prune_redundant_edges(abstract_graph(g, abstraction))
    print(f"abstract model: {abstract.actor_count()} actors, {abstract.edge_count()} edges")

    original = throughput(g)
    bound = throughput(abstract)
    per_frame = original.cycle_time
    per_frame_bound = abstraction.phase_count * bound.cycle_time
    print(f"frame period, exact: {per_frame}")
    print(f"frame period, abstract bound: {per_frame_bound}")
    print(f"abstraction exact: {per_frame == per_frame_bound} "
          "(the paper: 'exactly the same throughput as the original graph')")


def main() -> None:
    prefetch_family()
    remote_memory()


if __name__ == "__main__":
    main()
