#!/usr/bin/env python3
"""Throughput / buffer-size trade-off exploration (references [18, 19]).

Finite buffers are modelled by reverse edges carrying "space" tokens;
shrinking a buffer adds dependencies and can only slow the graph down —
the same monotonicity (Proposition 1) that makes the paper's abstraction
sound.  This script sweeps the capacity of every channel of the CD-to-DAT
sample-rate converter and prints the Pareto-style curve from the minimal
live buffering up to the point where extra space stops helping.

Run:  python examples/buffer_tradeoff.py
"""

from fractions import Fraction

from repro.analysis.buffer import (
    buffer_aware_throughput,
    minimal_buffer_sizes,
)
from repro import throughput
from repro.graphs.dsp import sample_rate_converter


def main() -> None:
    g = sample_rate_converter()
    unbounded = throughput(g)
    print(f"graph: {g}")
    print(f"unbounded-buffer cycle time: {unbounded.cycle_time}")

    minimal = minimal_buffer_sizes(g)
    print(f"minimal live buffer sizes: {minimal}")
    total_min = sum(minimal.values())

    print(f"\n{'scale':>6} {'total buffer':>13} {'cycle time':>12} {'vs unbounded':>13}")
    for scale in (1, 2, 3, 4, 6, 8, 12):
        capacities = {name: size * scale for name, size in minimal.items()}
        # Space tokens count towards the symbolic back-end's matrix size;
        # the repetition-vector-sized "hsdf" back-end suits this sweep.
        result = buffer_aware_throughput(g, capacities, method="hsdf")
        slowdown = Fraction(result.cycle_time, unbounded.cycle_time)
        print(
            f"{scale:>6} {sum(capacities.values()):>13} "
            f"{str(result.cycle_time):>12} {float(slowdown):>12.3f}x"
        )

    print(
        "\nSmaller buffers add reverse dependencies and can only slow the "
        "graph down;\nenough space recovers the unbounded-buffer throughput."
    )


if __name__ == "__main__":
    main()
