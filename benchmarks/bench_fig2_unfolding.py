"""Experiment E3: the Figure 2 abstraction/unfolding example.

Regenerates the Section 4.2 walkthrough: abstracting the two actor
groups, the redundant three-token self-edge and its pruning, the 3-fold
unfolding, and the Proposition-1 dominance of the unfolding over the
original graph.
"""

import pytest

from repro.analysis.throughput import throughput
from repro.core.abstraction import abstract_graph
from repro.core.conservativity import dominates, sigma_map
from repro.core.pruning import prune_redundant_edges
from repro.core.unfolding import unfold
from repro.graphs.examples import figure2_abstraction, figure2_graph


def test_figure2_walkthrough(report):
    g = figure2_graph()
    ab = figure2_abstraction()
    report("Figure 2 walkthrough")
    report(f"(a) original: {g.actor_count()} actors, {g.edge_count()} edges")

    abstract = abstract_graph(g, ab)
    report(f"(b) abstract: {abstract.actor_count()} actors, {abstract.edge_count()} edges")
    self_tokens = sorted(
        e.tokens for e in abstract.edges if e.source == e.target == "A"
    )
    report(f"    A self-edges token counts: {self_tokens} "
           "(the 3-token ones are redundant, cf. Section 4.2)")

    pruned = prune_redundant_edges(abstract)
    report(f"    pruned: {pruned.edge_count()} edges "
           f"(removed {abstract.edge_count() - pruned.edge_count()})")

    unfolded = unfold(abstract, ab.phase_count)
    report(f"(c) 3-fold unfolding: {unfolded.actor_count()} actors, "
           f"{unfolded.edge_count()} edges")

    ok, _ = dominates(unfolded, g, sigma_map(ab), explain=True)
    report(f"    dominates original (Prop. 1): {ok}")
    assert ok

    original = throughput(g).cycle_time
    bound = ab.phase_count * throughput(pruned).cycle_time
    report(f"cycle time: exact {original}, abstract bound {bound} (conservative)")
    assert bound >= original
    report.save("figure2")


def test_unfolding_runtime(benchmark):
    g = figure2_graph()
    ab = figure2_abstraction()
    abstract = abstract_graph(g, ab)
    unfolded = benchmark(unfold, abstract, ab.phase_count)
    assert unfolded.actor_count() == abstract.actor_count() * ab.phase_count


def test_dominance_check_runtime(benchmark):
    g = figure2_graph()
    ab = figure2_abstraction()
    unfolded = unfold(abstract_graph(g, ab), ab.phase_count)
    sigma = sigma_map(ab)
    assert benchmark(dominates, unfolded, g, sigma)
