"""Experiment E2: the Section 4.1 running example (Figure 1).

Regenerates the paper's hand calculation — one iteration of Figure 1(a)
takes 23 time units, the throughput of the n-actor family is 1/(5n−7),
the abstraction estimates it as 1/(5n), and the relative error vanishes
with n — and times the abstraction-based analysis against the exact one.
"""

from fractions import Fraction

import pytest

from repro.analysis.latency import latency
from repro.analysis.throughput import throughput
from repro.core.conservativity import verify_abstraction
from repro.graphs.synthetic import regular_prefetch, regular_prefetch_abstraction

SIZES = (6, 12, 24, 48, 96, 192)


def test_section41_numbers(report):
    report("Section 4.1 example (Figure 1), n = 6")
    g = regular_prefetch(6)
    report(f"single execution (makespan): {latency(g).makespan}   (paper: 23)")
    result = throughput(g)
    report(f"throughput: 1/{result.cycle_time}   (paper: 1/23)")
    assert latency(g).makespan == 23
    assert result.cycle_time == 23
    report.save("section41")


def test_figure1_series(report):
    report("Figure 1 family: exact vs abstract throughput")
    report(f"{'n':>5} {'actors':>7} {'cycle 5n-7':>10} {'bound 5n':>9} {'rel.err':>9}")
    for n in SIZES:
        cert = verify_abstraction(regular_prefetch(n), regular_prefetch_abstraction(n))
        assert cert.original_cycle_time == 5 * n - 7
        assert cert.bound_cycle_time == 5 * n
        report(
            f"{n:>5} {2 * n - 2:>7} {str(cert.original_cycle_time):>10} "
            f"{str(cert.bound_cycle_time):>9} {float(cert.relative_error):>9.4f}"
        )
    report.save("figure1_series")


@pytest.mark.parametrize("n", SIZES)
def test_exact_throughput_runtime(benchmark, n):
    g = regular_prefetch(n)
    result = benchmark(throughput, g)
    assert result.cycle_time == 5 * n - 7


@pytest.mark.parametrize("n", SIZES)
def test_abstract_throughput_runtime(benchmark, n):
    """The point of the reduction: analysing the 2-actor abstract graph
    costs the same regardless of n (plus the O(n) reduction itself)."""
    from repro.core.abstraction import abstract_graph
    from repro.core.pruning import prune_redundant_edges

    g = regular_prefetch(n)
    abstraction = regular_prefetch_abstraction(n)

    def reduced_analysis():
        abstract = prune_redundant_edges(abstract_graph(g, abstraction))
        return throughput(abstract)

    result = benchmark(reduced_analysis)
    assert result.cycle_time == 5
