"""Experiment E11 (extension): scenario-aware worst-case analysis.

The paper's reference [7] machinery at work: worst-case throughput of a
two-mode decoder over protocol FSMs of growing permissiveness, checked
against the brute-force periodic-sequence oracle and timed.
"""

import pathlib

import pytest

from bench_common import entry, write_bench
from repro.analysis.batch import run_batch
from repro.analysis.cache import AnalysisCache
from repro.analysis.throughput import throughput
from repro.scenarios import (
    Scenario,
    ScenarioFSM,
    enumerate_periodic_sequences,
    sequence_cycle_time,
    worst_case_cycle_time,
)
from repro.sdf.graph import SDFGraph

BENCH_FILE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_scenarios.json"


def frame_scenario(name, parse, decode, render):
    g = SDFGraph(name)
    g.add_actor("parse", parse)
    g.add_actor("decode", decode)
    g.add_actor("render", render)
    g.add_edge("parse", "parse", tokens=1, name="t_parse")
    g.add_edge("parse", "decode", name="pd")
    g.add_edge("decode", "decode", tokens=1, name="t_decode")
    g.add_edge("decode", "render", name="dr")
    g.add_edge("render", "render", tokens=1, name="t_render")
    g.add_edge("render", "parse", tokens=2, name="frame_buffer")
    return Scenario(name, g)


SCENARIOS = {
    "I": frame_scenario("I", 7, 9, 2),
    "P": frame_scenario("P", 2, 3, 4),
}


def protocol(min_p_frames: int) -> ScenarioFSM:
    """An I-frame must be followed by at least ``min_p_frames`` P-frames."""
    fsm = ScenarioFSM("i")
    previous = "i"
    for index in range(1, min_p_frames + 1):
        fsm.add_transition(previous, "I" if index == 1 else "P", f"p{index}")
        previous = f"p{index}"
    # Entering state p1 consumed the I; chain P's then allow free P/I.
    fsm.add_transition(previous, "P", "p*")
    fsm.add_transition("p*", "P", "p*")
    fsm.add_transition("p*", "I", "p1")
    return fsm


def test_worst_case_vs_protocol(report):
    report("FSM-SADF worst case: I/P-frame decoder under protocols")
    naive = max(throughput(s.graph).cycle_time for s in SCENARIOS.values())
    report(f"naive per-frame bound (always the slow mode): {naive}")
    report(f"{'min P-frames':>13} {'worst case':>11} {'witness':>20} {'states':>7}")
    previous = None
    for min_p in (1, 2, 3, 5, 8):
        result = worst_case_cycle_time(SCENARIOS, protocol(min_p))
        witness = " ".join(result.witness)
        report(f"{min_p:>13} {str(result.cycle_time):>11} {witness:>20} {result.explored:>7}")
        assert result.cycle_time <= naive
        if previous is not None:
            # More forced P-frames can only lower the worst case.
            assert result.cycle_time <= previous
        previous = result.cycle_time
    report.save("scenarios")


def test_matches_enumeration_oracle(report):
    fsm = protocol(3)
    result = worst_case_cycle_time(SCENARIOS, fsm)
    oracle = max(
        sequence_cycle_time(SCENARIOS, seq)
        for seq in enumerate_periodic_sequences(fsm, max_length=8)
    )
    report(f"exploration {result.cycle_time} == oracle (<=8 frames) {oracle}")
    assert result.cycle_time == oracle
    report.save("scenarios_oracle")


def test_scenario_suite_through_batch_runner(report):
    """Per-mode throughput of a scenario sweep via the batch runner.

    A protocol exploration touches each mode's graph once per FSM state;
    the batch runner's content-addressed cache collapses those repeats
    to one computation per distinct mode."""
    sweep = [
        scenario.graph.copy(f"{scenario.name}@state{state}")
        for state in range(4)
        for scenario in SCENARIOS.values()
    ]
    batch = run_batch(sweep, backend="thread", workers=4, cache=AnalysisCache())
    assert not batch.failures
    stats = batch.cache_stats
    assert stats.misses == len(SCENARIOS)  # one compute per distinct mode
    report("Scenario sweep through the batch runner (4 thread workers)")
    report(f"{len(sweep)} jobs over {len(SCENARIOS)} modes: "
           f"{stats.misses} computed, {stats.hits + stats.coalesced} served "
           f"from cache, {batch.duration:.4f}s")
    for name, scenario in SCENARIOS.items():
        expected = throughput(scenario.graph).cycle_time
        for result in batch.results:
            if result.name.startswith(f"{name}@"):
                assert result.values["throughput"].cycle_time == expected
        report(f"  mode {name}: cycle time {expected}")
    # Informational trend entries (no asserted floor): the regression
    # sentinel watches them drift across commits via history.jsonl.
    write_bench(BENCH_FILE, "scenarios", [
        entry("sweep_wall_seconds", "s", batch.duration,
              jobs=len(sweep), modes=len(SCENARIOS),
              backend="thread", workers=4),
        entry("sweep_jobs_per_second", "jobs/s",
              len(sweep) / batch.duration if batch.duration else 0.0,
              jobs=len(sweep), backend="thread", workers=4),
    ])
    report(f"written to {BENCH_FILE.name}")
    report.save("scenarios_batch")


@pytest.mark.parametrize("min_p", [1, 3, 8])
def test_worst_case_runtime(benchmark, min_p):
    fsm = protocol(min_p)
    result = benchmark(worst_case_cycle_time, SCENARIOS, fsm)
    assert result.cycle_time is not None
