"""Resilience-layer baseline: deadline overhead and the fallback win.

Two measurements, persisted to ``BENCH_resilience.json`` at the
repository root (``repro-bench-v1`` schema, see
``benchmarks/bench_common.py``):

* **deadline-check overhead** — the max-plus MCM hot path (symbolic
  matrix -> Karp's algorithm) run bare vs. under a generous
  :class:`Deadline`.  The checks are strided (the clock is consulted on
  every 64th poll), so the budget is < 3% — making it affordable to
  leave deadlines on in production flows.
* **fallback wall-clock win** — on the worst registry graph (largest
  iteration length, i.e. the worst classical-expansion blowup), the
  tiered policy's Theorem-1 conservative bound vs. the exact analysis
  through the traditional HSDF expansion the fallback spares us.  The
  bound must also actually *bound* (>= the exact iteration period).
"""

from __future__ import annotations

import pathlib
import time

from bench_common import write_bench, entry
from repro.analysis.deadline import Deadline
from repro.analysis.resilience import CONSERVATIVE, AnalysisPolicy
from repro.analysis.throughput import throughput
from repro.core.symbolic import symbolic_iteration
from repro.graphs import TABLE1_CASES
from repro.maxplus.spectral import eigenvalue
from repro.sdf.repetition import iteration_length

BENCH_FILE = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_resilience.json"
)

#: Repeats per timing; min-of-N suppresses scheduler noise.
REPEATS = 7


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_deadline_overhead() -> dict:
    """Strided deadline checks on the MCM hot loop, bare vs. timed.

    Single runs of the MCM are dominated by scheduler/allocator jitter
    (±10% run to run), so each timing *sample* batches ``BATCH`` full
    Karp analyses of the worst registry graph's symbolic matrix and the
    bare/timed samples are interleaved; min-of-samples then isolates the
    systematic cost of the checks from the noise."""
    # Largest symbolic matrix in the registry: per-call costs amortise
    # over the longest Karp runs, so the fraction reflects the strided
    # checks and not call-setup noise.
    graph = max(
        (case.build() for case in TABLE1_CASES),
        key=lambda g: symbolic_iteration(g).matrix.nrows,
    )
    matrix = symbolic_iteration(graph).matrix
    deadline = Deadline.after(3000.0)

    # The strided checks must not change the answer.
    assert eigenvalue(matrix) == eigenvalue(matrix, deadline=deadline)

    def run_bare() -> None:
        for _ in range(BATCH):
            eigenvalue(matrix)

    def run_timed() -> None:
        for _ in range(BATCH):
            eigenvalue(matrix, deadline=deadline)

    BATCH = 40
    bare = timed = float("inf")
    for repeat in range(REPEATS):
        # Alternate which variant goes first: whatever runs second in a
        # pair pays the first one's allocator/GC debt (~2-3% measured),
        # so a fixed order would masquerade as deadline overhead.
        pair = ((run_bare, run_timed) if repeat % 2 == 0
                else (run_timed, run_bare))
        for fn in pair:
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            if fn is run_bare:
                bare = min(bare, elapsed)
            else:
                timed = min(timed, elapsed)
    overhead = (timed - bare) / bare if bare else 0.0
    return {
        "graph": graph.name,
        "matrix_order": matrix.nrows,
        "repeats": REPEATS,
        "batch": BATCH,
        "bare_seconds": round(bare, 6),
        "deadline_seconds": round(timed, 6),
        "overhead_fraction": round(overhead, 4),
        "target_fraction": 0.03,
    }


def measure_fallback_win() -> dict:
    """Theorem-1 fallback vs. exact-through-expansion on the worst graph."""
    worst = max(TABLE1_CASES, key=lambda case: iteration_length(case.build()))
    graph = worst.build()
    exact_result = throughput(graph, method="symbolic")

    exact_seconds = _best_of(3, lambda: throughput(graph, method="hsdf"))

    policy = AnalysisPolicy(
        timeout=60.0,
        stage_timeouts={"simulation": 0.001, "symbolic": 0.001},
    )
    outcome = policy.run(graph)
    assert outcome.status == CONSERVATIVE, outcome.describe()
    assert outcome.cycle_time_bound >= exact_result.cycle_time
    fallback_seconds = _best_of(3, lambda: policy.run(graph))

    return {
        "graph": graph.name,
        "iteration_length": iteration_length(graph),
        "exact_hsdf_seconds": round(exact_seconds, 6),
        "fallback_seconds": round(fallback_seconds, 6),
        "speedup": round(exact_seconds / fallback_seconds, 2),
        "exact_cycle_time": str(exact_result.cycle_time),
        "bound_cycle_time": str(outcome.cycle_time_bound),
        "bound_phase_count": outcome.bound_phase_count,
        "bound_strategy": outcome.bound_strategy,
        "overestimation_factor": round(
            float(outcome.cycle_time_bound / exact_result.cycle_time), 3
        ),
    }


def _entries(overhead: dict, fallback: dict) -> list:
    return [
        entry("deadline_overhead_fraction", "ratio",
              overhead["overhead_fraction"], baseline=0.03,
              graph=overhead["graph"],
              matrix_order=overhead["matrix_order"],
              repeats=overhead["repeats"], batch=overhead["batch"],
              note="baseline is the asserted ceiling"),
        entry("deadline_bare_seconds", "s", overhead["bare_seconds"]),
        entry("deadline_timed_seconds", "s", overhead["deadline_seconds"]),
        entry("fallback_exact_hsdf_seconds", "s",
              fallback["exact_hsdf_seconds"], graph=fallback["graph"],
              iteration_length=fallback["iteration_length"]),
        entry("fallback_seconds", "s", fallback["fallback_seconds"],
              bound_strategy=fallback["bound_strategy"],
              bound_phase_count=fallback["bound_phase_count"]),
        entry("fallback_speedup", "x", fallback["speedup"]),
        entry("fallback_overestimation_factor", "x",
              fallback["overestimation_factor"],
              exact_cycle_time=fallback["exact_cycle_time"],
              bound_cycle_time=fallback["bound_cycle_time"]),
    ]


def test_resilience_baseline(report):
    overhead = measure_deadline_overhead()
    fallback = measure_fallback_win()

    report("Resilience: deadline overhead + fallback win (BENCH_resilience.json)")
    report(f"MCM hot loop on {overhead['graph']} "
           f"(order-{overhead['matrix_order']} matrix x "
           f"{overhead['batch']} analyses/sample): "
           f"bare {overhead['bare_seconds']:.4f}s, "
           f"with deadline {overhead['deadline_seconds']:.4f}s "
           f"({overhead['overhead_fraction']:+.1%}, target < 3%)")
    report(f"{fallback['graph']} "
           f"(iteration length {fallback['iteration_length']}): "
           f"exact via expansion {fallback['exact_hsdf_seconds']:.3f}s, "
           f"Theorem-1 fallback {fallback['fallback_seconds']:.3f}s "
           f"({fallback['speedup']:.1f}x); bound "
           f"{fallback['bound_cycle_time']} vs exact "
           f"{fallback['exact_cycle_time']} "
           f"({fallback['overestimation_factor']:.2f}x over)")
    write_bench(BENCH_FILE, "resilience", _entries(overhead, fallback))
    report(f"written to {BENCH_FILE.name}")
    report.save("resilience")

    # Acceptance: strided checks stay under the 3% budget, and the
    # fallback actually wins wall-clock against the exact expansion.
    assert overhead["overhead_fraction"] < 0.03
    assert fallback["fallback_seconds"] < fallback["exact_hsdf_seconds"]


if __name__ == "__main__":  # standalone: regenerate the JSON baseline
    import json

    doc = write_bench(
        BENCH_FILE, "resilience",
        _entries(measure_deadline_overhead(), measure_fallback_win()),
    )
    print(json.dumps(doc, indent=2))
