"""Experiment E6: the Section 6 size bounds of the new conversion.

"The resulting graph has at most N(N+2) actors, N(2N+1) edges and N
initial tokens."  Swept over random consistent SDF graphs and the
benchmark suite; also reports how far below the bound the realised sizes
stay (the matrix sparsity the paper's Figure 4 grays out).
"""

import random

import pytest

from repro.core.hsdf_conversion import convert_to_hsdf
from repro.graphs import TABLE1_CASES
from repro.graphs.random_sdf import random_consistent_sdf


def test_bounds_on_random_graphs(report):
    report("Section 6 bounds on random consistent SDF graphs")
    report(f"{'seed':>5} {'N':>4} {'actors':>7} {'bound':>7} {'edges':>6} {'bound':>7} {'tokens':>7}")
    for seed in range(20):
        rng = random.Random(seed)
        g = random_consistent_sdf(
            rng,
            n_actors=rng.randint(2, 8),
            extra_edges=rng.randint(0, 6),
            max_repetition=rng.randint(1, 6),
        )
        conv = convert_to_hsdf(g)
        n = len(conv.token_ids)
        assert conv.actor_count <= n * (n + 2)
        assert conv.edge_count <= n * (2 * n + 1)
        assert conv.token_count <= n
        report(
            f"{seed:>5} {n:>4} {conv.actor_count:>7} {n * (n + 2):>7} "
            f"{conv.edge_count:>6} {n * (2 * n + 1):>7} {conv.token_count:>7}"
        )
    report.save("bounds_random")


def test_bounds_on_benchmarks(report):
    report("Section 6 bounds on the Table 1 applications")
    report(f"{'case':<24} {'N':>4} {'actors':>7} {'N(N+2)':>7} {'fill %':>7}")
    for case in TABLE1_CASES:
        conv = convert_to_hsdf(case.build())
        n = len(conv.token_ids)
        bound = n * (n + 2)
        assert conv.within_paper_bounds()
        report(
            f"{case.name:<24} {n:>4} {conv.actor_count:>7} {bound:>7} "
            f"{100 * conv.actor_count / bound:>6.1f}%"
        )
    report.save("bounds_benchmarks")


@pytest.mark.parametrize("seed", [0, 7, 13])
def test_conversion_runtime_random(benchmark, seed):
    rng = random.Random(seed)
    g = random_consistent_sdf(rng, n_actors=6, extra_edges=4, max_repetition=6)
    conv = benchmark(convert_to_hsdf, g)
    assert conv.within_paper_bounds()
