"""Experiment E8: cross-validation of every throughput back-end.

'Equivalent' in Section 6 means same throughput and latency.  This
harness checks, for every benchmark application and a sweep of random
graphs, that four independently implemented routes agree exactly:

1. symbolic max-plus eigenvalue of the iteration matrix,
2. maximum cycle ratio of the *compact* HSDF (the paper's conversion),
3. maximum cycle ratio of the *traditional* HSDF (the baseline),
4. explicit self-timed state-space simulation,

and times routes 1-3 against each other on the applications (the
motivation for the whole paper: route 3's input is exponentially large).
"""

import random

import pytest

from repro.analysis.throughput import throughput
from repro.core.hsdf_conversion import convert_to_hsdf
from repro.graphs import TABLE1_CASES
from repro.graphs.random_sdf import random_consistent_sdf
from repro.sdf.transform import traditional_hsdf


def test_equivalence_on_benchmarks(report):
    report("Throughput route cross-validation (iteration period λ)")
    report(f"{'case':<24} {'symbolic':>10} {'compact':>10} {'traditional':>12} {'simulation':>11}")
    for case in TABLE1_CASES:
        g = case.build()
        lam = throughput(g, method="symbolic").cycle_time
        compact = throughput(convert_to_hsdf(g).graph, method="hsdf").cycle_time
        assert compact == lam
        if case.paper_traditional <= 1200:
            trad = throughput(traditional_hsdf(g), method="hsdf").cycle_time
            assert trad == lam
        else:
            trad = "(skipped)"
        if case.paper_traditional <= 700 and g.is_strongly_connected():
            sim = throughput(g, method="simulation").cycle_time
            assert sim == lam
        else:
            sim = "(skipped)"
        report(f"{case.name:<24} {str(lam):>10} {str(compact):>10} {str(trad):>12} {str(sim):>11}")
    report.save("equivalence")


def test_equivalence_on_random_sweep(report):
    agree = 0
    for seed in range(25):
        rng = random.Random(seed)
        g = random_consistent_sdf(rng, n_actors=5, extra_edges=3, max_repetition=4)
        lam = throughput(g, method="symbolic").cycle_time
        assert throughput(convert_to_hsdf(g).graph, method="hsdf").cycle_time == lam
        assert throughput(traditional_hsdf(g), method="hsdf").cycle_time == lam
        agree += 1
    report(f"random sweep: {agree}/25 graphs, all four routes agree exactly")
    report.save("equivalence_random")


CASES_SMALL = [c for c in TABLE1_CASES if c.paper_traditional <= 1200]


@pytest.mark.parametrize("case", TABLE1_CASES, ids=lambda c: c.name)
def test_symbolic_route_runtime(benchmark, case):
    g = case.build()
    benchmark(throughput, g, "symbolic")


@pytest.mark.parametrize("case", TABLE1_CASES, ids=lambda c: c.name)
def test_compact_route_runtime(benchmark, case):
    """Convert once (the reduction), then measure analysing the small graph."""
    compact = convert_to_hsdf(case.build()).graph
    benchmark(throughput, compact, "hsdf")


@pytest.mark.parametrize("case", CASES_SMALL, ids=lambda c: c.name)
def test_traditional_route_runtime(benchmark, case):
    """The baseline the paper improves on: analyse the Σγ-sized expansion."""
    expanded = traditional_hsdf(case.build())
    benchmark(throughput, expanded, "hsdf")
