"""Scalability sweeps: the quadratic-size law and analysis-cost scaling.

Two empirical laws from the paper made visible:

* the compact conversion grows with the *square of the token count* and
  not with Σγ (Section 6's whole point) — swept by growing a pipeline's
  feedback token count;
* the classical expansion (and any analysis on it) grows with Σγ —
  swept by scaling the rates of a two-actor multirate graph, which
  leaves the compact conversion's size untouched.
"""

import pathlib

import pytest

from bench_common import entry, write_bench
from repro.analysis.batch import run_batch
from repro.analysis.cache import AnalysisCache
from repro.analysis.throughput import throughput
from repro.core.hsdf_conversion import convert_to_hsdf
from repro.graphs.synthetic import homogeneous_pipeline, regular_prefetch
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import iteration_length

BENCH_FILE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_scalability.json"


def multirate_pair(scale: int) -> SDFGraph:
    """γ = (scale, 1): Σγ grows linearly with ``scale``; exactly two
    initial tokens (the self-loops) regardless of scale — the mp3-style
    shape where the compact conversion's advantage is largest."""
    g = SDFGraph(f"pair-{scale}")
    g.add_actor("producer", 1)
    g.add_actor("consumer", scale)
    g.add_edge("producer", "producer", tokens=1, name="self_p")
    g.add_edge("consumer", "consumer", tokens=1, name="self_c")
    g.add_edge("producer", "consumer", production=1, consumption=scale)
    return g


def test_token_count_sweep(report):
    report("Compact conversion size vs token count (pipeline, growing feedback)")
    report(f"{'tokens N':>9} {'actors':>7} {'N(N+2)':>7} {'edges':>6}")
    for tokens in (1, 2, 4, 8, 16):
        g = homogeneous_pipeline(4, execution_times=[1, 2, 3, 4], tokens=tokens)
        conv = convert_to_hsdf(g)
        n = len(conv.token_ids)
        assert conv.within_paper_bounds()
        report(f"{n:>9} {conv.actor_count:>7} {n * (n + 2):>7} {conv.edge_count:>6}")
    report.save("scalability_tokens")


def test_rate_sweep_leaves_compact_size_unchanged(report):
    report("Σγ grows with rates; the compact conversion does not")
    report(f"{'scale':>6} {'sum gamma':>10} {'traditional':>11} {'compact':>8}")
    sizes = set()
    for scale in (2, 8, 32, 128, 512):
        g = multirate_pair(scale)
        conv = convert_to_hsdf(g)
        report(
            f"{scale:>6} {iteration_length(g):>10} {iteration_length(g):>11} "
            f"{conv.actor_count:>8}"
        )
        sizes.add(conv.actor_count)
        assert conv.within_paper_bounds()
    # Token structure is scale-independent, so the compact size is one
    # constant while the traditional expansion grows linearly.
    assert len(sizes) == 1
    report.save("scalability_rates")


def test_batch_runner_on_scalability_suite(report):
    """The whole sweep through the 4-worker batch runner: same numbers
    as the direct calls, one shared cache, per-graph wall times."""
    suite = [multirate_pair(scale) for scale in (2, 8, 32, 128, 512)]
    suite += [regular_prefetch(n) for n in (16, 64)]
    batch = run_batch(
        suite,
        analyses=("repetition", "throughput"),
        backend="thread",
        workers=4,
        cache=AnalysisCache(),
    )
    assert not batch.failures
    report("Scalability suite through the batch runner (4 thread workers)")
    report(f"{'graph':>12} {'sum gamma':>10} {'cycle time':>11} {'time':>9}")
    for result in batch.results:
        gamma = sum(result.values["repetition"].values())
        cycle = result.values["throughput"].cycle_time
        report(f"{result.name:>12} {gamma:>10} {str(cycle):>11} "
               f"{result.duration:>8.4f}s")
    for g, result in zip(suite, batch.results):
        assert result.values["throughput"].cycle_time == throughput(g).cycle_time
    report(f"total {batch.duration:.4f}s, cache {batch.cache_stats.size} entries")
    # Informational trend entries (no asserted floor): the regression
    # sentinel watches them drift across commits via history.jsonl.
    write_bench(BENCH_FILE, "scalability", [
        entry("batch_wall_seconds", "s", batch.duration,
              graphs=len(suite), backend="thread", workers=4),
        entry("batch_graphs_per_second", "graphs/s",
              len(suite) / batch.duration if batch.duration else 0.0,
              graphs=len(suite), backend="thread", workers=4),
    ])
    report(f"written to {BENCH_FILE.name}")
    report.save("scalability_batch")


@pytest.mark.parametrize("n", [16, 64, 256])
def test_prefetch_conversion_runtime(benchmark, n):
    g = regular_prefetch(n)
    conv = benchmark(convert_to_hsdf, g)
    assert conv.within_paper_bounds()


@pytest.mark.parametrize("scale", [8, 64, 512])
def test_multirate_symbolic_runtime(benchmark, scale):
    g = multirate_pair(scale)
    result = benchmark(throughput, g, "symbolic")
    assert not result.unbounded
