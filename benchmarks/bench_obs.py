"""Observability-layer baseline: the price of tracing, off and on.

Persisted to ``BENCH_obs.json`` at the repository root
(``repro-bench-v1`` schema, see ``benchmarks/bench_common.py``):

* **disabled-tracing overhead** — the asserted number.  Spans sit at
  *stage* granularity, so a disabled analysis pays exactly one
  module-global read per ``span()`` call site.  The suite measures that
  per-call fast path directly (millions of calls, min-of-N), counts the
  call sites one analysis of the worst registry graph actually crosses,
  and derives ``sites x ns_per_call / analysis_seconds`` — a
  deterministic bound immune to scheduler jitter.  Budget: <= 2%
  (measured: orders of magnitude below it).
* **A/B cross-check** — the same analysis batch with the hooks live
  (disabled) vs. stubbed out entirely, order-alternated min-of-N (the
  ``bench_resilience.py`` methodology).  Informational: its noise floor
  (~±2%) exceeds the true cost, which is why the derived number is the
  asserted one.
* **enabled-tracing cost** — the same batch under a live
  :class:`~repro.obs.trace.Tracer`, for context.
"""

from __future__ import annotations

import pathlib
import time

import importlib

from bench_common import entry, noise_floored, write_bench
from repro.analysis.throughput import throughput
from repro.core.symbolic import symbolic_iteration
from repro.graphs import TABLE1_CASES
from repro.obs.trace import Tracer, _NULL_SPAN, span

BENCH_FILE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_obs.json"

#: The module object (the package re-exports shadow the submodule name,
#: so ``import repro.analysis.throughput as m`` would bind the function).
throughput_mod = importlib.import_module("repro.analysis.throughput")

#: Analyses per timing sample / samples per variant (min-of-N).
BATCH = 40
REPEATS = 7


def _worst_graph():
    """Largest symbolic matrix in the registry — the MCM hot path."""
    return max(
        (case.build() for case in TABLE1_CASES),
        key=lambda g: symbolic_iteration(g).matrix.nrows,
    )


def _stub_span(name, **args):
    return _NULL_SPAN


def measure_disabled_overhead() -> dict:
    """Instrumented-but-disabled vs. hooks stubbed out entirely.

    The shipped code calls :func:`repro.obs.trace.span` at stage
    granularity; disabled, each call is one global read.  The baseline
    variant monkeypatches the module's ``span`` references to a bare
    stub — the closest observable stand-in for un-instrumented code.
    Variants alternate order every repeat (whatever runs second pays
    the first one's allocator/GC debt, which would otherwise masquerade
    as tracing overhead).
    """
    graph = _worst_graph()
    throughput(graph)  # warm every lazy import/cache outside the timing

    def run_instrumented() -> None:
        for _ in range(BATCH):
            throughput(graph)

    def run_stubbed() -> None:
        original = throughput_mod.span
        throughput_mod.span = _stub_span
        try:
            for _ in range(BATCH):
                throughput(graph)
        finally:
            throughput_mod.span = original

    instrumented = stubbed = float("inf")
    for repeat in range(REPEATS):
        pair = ((run_stubbed, run_instrumented) if repeat % 2 == 0
                else (run_instrumented, run_stubbed))
        for fn in pair:
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            if fn is run_stubbed:
                stubbed = min(stubbed, elapsed)
            else:
                instrumented = min(instrumented, elapsed)
    overhead = (instrumented - stubbed) / stubbed if stubbed else 0.0

    # Enabled tracing, same batch, for context (fresh tracer per sample
    # so span accumulation does not grow across repeats).
    enabled = float("inf")
    for _ in range(3):
        tracer = Tracer()
        with tracer:
            start = time.perf_counter()
            run_instrumented()
            enabled = min(enabled, time.perf_counter() - start)

    return {
        "graph": graph.name,
        "batch": BATCH,
        "repeats": REPEATS,
        "stubbed_seconds": round(stubbed, 6),
        "disabled_seconds": round(instrumented, 6),
        "enabled_seconds": round(enabled, 6),
        "overhead_fraction": round(overhead, 4),
        "enabled_fraction": round((enabled - stubbed) / stubbed, 4),
    }


def measure_nullspan_cost() -> dict:
    """Per-call cost of the disabled ``span()`` fast path, in ns."""
    calls = 1_000_000
    best = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(calls):
            span("bench")
        best = min(best, time.perf_counter() - start)
    return {"calls": calls, "ns_per_call": round(best / calls * 1e9, 1)}


def derive_hot_loop_fraction(nullspan: dict) -> dict:
    """``sites x ns_per_call / analysis_seconds`` on the worst graph.

    The call-site count comes from actually tracing one analysis (every
    span a tracer records is one disabled-path call in production), so
    the bound tracks the instrumentation as it evolves.
    """
    graph = _worst_graph()
    throughput(graph)  # warm
    with Tracer() as tracer:
        throughput(graph)
    sites = len(tracer.spans())
    analysis_seconds = _best_of(5, lambda: throughput(graph))
    fraction = sites * nullspan["ns_per_call"] * 1e-9 / analysis_seconds
    return {
        "graph": graph.name,
        "span_sites": sites,
        "analysis_seconds": round(analysis_seconds, 6),
        "fraction": round(fraction, 8),
    }


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _entries(disabled: dict, nullspan: dict, derived: dict) -> list:
    return [
        entry("tracing_disabled_overhead_fraction", "ratio",
              derived["fraction"], baseline=0.02,
              graph=derived["graph"], span_sites=derived["span_sites"],
              analysis_seconds=derived["analysis_seconds"],
              note="derived: sites x ns_per_call / analysis_seconds; "
                   "baseline is the asserted ceiling"),
        noise_floored("tracing_ab_overhead_fraction", "ratio",
                      disabled["overhead_fraction"], baseline=0.10,
                      graph=disabled["graph"], batch=disabled["batch"],
                      repeats=disabled["repeats"],
                      note="A/B with ~±2% noise floor; baseline is the "
                           "asserted |overhead| <= 10% sanity ceiling; "
                           "negative measurements clamp to 0"),
        entry("tracing_stubbed_seconds", "s", disabled["stubbed_seconds"]),
        entry("tracing_disabled_seconds", "s", disabled["disabled_seconds"]),
        entry("tracing_enabled_seconds", "s", disabled["enabled_seconds"],
              enabled_fraction=disabled["enabled_fraction"]),
        entry("nullspan_ns_per_call", "ns", nullspan["ns_per_call"],
              calls=nullspan["calls"]),
    ]


def test_obs_overhead_baseline(report):
    disabled = measure_disabled_overhead()
    nullspan = measure_nullspan_cost()
    derived = derive_hot_loop_fraction(nullspan)
    entries = _entries(disabled, nullspan, derived)

    report("Observability: tracing overhead, off and on (BENCH_obs.json)")
    report(f"disabled span() fast path: {nullspan['ns_per_call']:.0f} ns/call; "
           f"{derived['span_sites']} call sites per analysis of "
           f"{derived['graph']} ({derived['analysis_seconds']:.4f}s) "
           f"-> {derived['fraction']:.6%} derived overhead (target <= 2%)")
    report(f"A/B cross-check ({disabled['batch']} analyses/sample): "
           f"stubbed {disabled['stubbed_seconds']:.4f}s, "
           f"disabled tracing {disabled['disabled_seconds']:.4f}s "
           f"({disabled['overhead_fraction']:+.1%}), "
           f"enabled {disabled['enabled_seconds']:.4f}s "
           f"({disabled['enabled_fraction']:+.1%})")
    write_bench(BENCH_FILE, "obs", entries)
    report(f"written to {BENCH_FILE.name}")
    report.save("obs_overhead")

    # Acceptance: disabled instrumentation costs <= 2% on the hot loop
    # (the derived bound; the A/B is informational, its noise floor is
    # above the true cost).
    assert derived["fraction"] <= 0.02
    # Sanity on the A/B: the absolute difference stays within the noise
    # floor — a genuine regression (e.g. work on the disabled path)
    # would push it far beyond ±10%.
    assert abs(disabled["overhead_fraction"]) <= 0.10


if __name__ == "__main__":  # standalone: regenerate the JSON baseline
    import json

    nullspan = measure_nullspan_cost()
    doc = write_bench(
        BENCH_FILE, "obs",
        _entries(measure_disabled_overhead(), nullspan,
                 derive_hot_loop_fraction(nullspan)),
    )
    print(json.dumps(doc, indent=2))
