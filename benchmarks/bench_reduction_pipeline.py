"""Experiment E10 (extension): the full reduction pipeline on mapped systems.

The paper's motivation in one benchmark: binding an application onto
processors requires firing-granular graphs (the traditional expansion —
huge), and the compact conversion collapses them back to token-sized
graphs while preserving the guaranteed period exactly.  This measures
sizes and analysis times along the pipeline

    application --bind--> firing-granular bound graph --convert--> compact HSDF
"""

import pytest

from repro.analysis.throughput import throughput
from repro.core.hsdf_conversion import convert_to_hsdf
from repro.graphs import TABLE1_CASES
from repro.mapping import greedy_load_balance, mapped_throughput
from repro.mapping.binding import bind

CASES = [c for c in TABLE1_CASES if c.paper_traditional <= 1200]


def test_pipeline_sizes(report):
    report("Reduction pipeline on mapped applications (2 processors)")
    report(f"{'case':<24} {'app':>5} {'bound':>6} {'compact':>8} {'period':>10}")
    for case in CASES:
        g = case.build()
        mapping = greedy_load_balance(g, 2)
        bound = bind(g, mapping)
        compact = convert_to_hsdf(bound)
        lam = throughput(compact.graph, method="hsdf").cycle_time
        assert lam == throughput(bound, method="hsdf").cycle_time
        report(
            f"{case.name:<24} {g.actor_count():>5} {bound.actor_count():>6} "
            f"{compact.actor_count:>8} {str(lam):>10}"
        )
    report.save("reduction_pipeline")


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_bound_analysis_via_compact_runtime(benchmark, case):
    """Analyse the mapped system through the compact conversion."""
    g = case.build()
    bound = bind(g, greedy_load_balance(g, 2))

    def reduced_analysis():
        compact = convert_to_hsdf(bound)
        return throughput(compact.graph, method="hsdf")

    result = benchmark(reduced_analysis)
    assert not result.unbounded


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_bound_analysis_direct_runtime(benchmark, case):
    """Baseline: analyse the firing-granular bound graph directly."""
    g = case.build()
    bound = bind(g, greedy_load_balance(g, 2))
    result = benchmark(throughput, bound, "hsdf")
    assert not result.unbounded
