"""Experiment E5: the Figure 5 remote-memory-access model from [16].

1584 block computations per video frame, pre-fetched through CA actors
over a network-on-chip.  The paper's claim: the obvious abstraction has
"exactly the same throughput as the original graph".  The benchmark also
shows the payoff — analysing the 3-actor abstract model vs the
4752-actor original.
"""

import pytest

from repro.analysis.throughput import throughput
from repro.core.abstraction import abstract_graph
from repro.core.conservativity import verify_abstraction
from repro.core.pruning import prune_redundant_edges
from repro.graphs.synthetic import remote_memory_abstraction, remote_memory_access

FULL_SIZE = 1584  # computations per frame in [16]


def test_figure5_exactness(report):
    report("Figure 5: remote memory access model (full-search block matching)")
    report(f"{'blocks':>7} {'actors':>7} {'frame period':>13} {'abstract bound':>15} {'exact?':>7}")
    for n in (8, 64, 512, FULL_SIZE):
        cert = verify_abstraction(
            remote_memory_access(n),
            remote_memory_abstraction(n),
            check_dominance=(n <= 64),  # unpruned unfolding is O(|D|·n)
        )
        exact = cert.relative_error == 0
        report(
            f"{n:>7} {3 * n:>7} {str(cert.original_cycle_time):>13} "
            f"{str(cert.bound_cycle_time):>15} {str(exact):>7}"
        )
        assert cert.conservative
        assert exact
    report.save("figure5")


def test_model_size_reduction(report):
    g = remote_memory_access(FULL_SIZE)
    abstract = prune_redundant_edges(
        abstract_graph(g, remote_memory_abstraction(FULL_SIZE))
    )
    report("model size: original vs abstract (Figure 5 left vs right)")
    report(f"original: {g.actor_count()} actors, {g.edge_count()} edges")
    report(f"abstract: {abstract.actor_count()} actors, {abstract.edge_count()} edges")
    assert abstract.actor_count() == 3
    report.save("figure5_size")


def test_full_model_throughput_runtime(benchmark):
    g = remote_memory_access(FULL_SIZE)
    result = benchmark(throughput, g)
    assert result.cycle_time == FULL_SIZE * 100


def test_abstract_model_throughput_runtime(benchmark):
    g = remote_memory_access(FULL_SIZE)
    abstraction = remote_memory_abstraction(FULL_SIZE)

    def reduced_analysis():
        abstract = prune_redundant_edges(abstract_graph(g, abstraction))
        return throughput(abstract)

    result = benchmark(reduced_analysis)
    assert FULL_SIZE * result.cycle_time == FULL_SIZE * 100
