"""Shared writer for the ``repro-bench-v1`` baseline schema.

Every ``BENCH_*.json`` at the repository root uses one flat shape so CI
can validate them with a single check (``repro.obs.check.validate_bench``)
and trend tooling does not need per-suite parsers::

    {
      "schema": "repro-bench-v1",
      "suite": "cache",
      "entries": [
        {"name": "...", "unit": "s", "value": 1.23,
         "baseline": null, "meta": {...}},
        ...
      ]
    }

``value`` is the measurement of this run; ``baseline`` is an optional
reference number (a budget/floor the suite asserts against, ``null``
when the entry is informational); ``meta`` carries the measurement's
context (graph, batch size, methodology knobs).
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Union

from repro.obs.check import BENCH_SCHEMA, validate_bench

__all__ = ["BENCH_SCHEMA", "entry", "write_bench"]


def entry(name: str, unit: str, value: float,
          baseline: Optional[float] = None,
          **meta: Any) -> Dict[str, Any]:
    """One ``repro-bench-v1`` entry."""
    return {
        "name": name,
        "unit": unit,
        "value": value,
        "baseline": baseline,
        "meta": meta,
    }


def write_bench(path: Union[str, pathlib.Path], suite: str,
                entries: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Assemble, self-validate and write one baseline file."""
    doc = {"schema": BENCH_SCHEMA, "suite": suite, "entries": entries}
    validate_bench(doc)  # never ship a baseline CI would reject
    pathlib.Path(path).write_text(json.dumps(doc, indent=2) + "\n")
    return doc
