"""Shared writer for the ``repro-bench-v1`` baseline schema.

Every ``BENCH_*.json`` at the repository root uses one flat shape so CI
can validate them with a single check (``repro.obs.check.validate_bench``)
and trend tooling does not need per-suite parsers::

    {
      "schema": "repro-bench-v1",
      "suite": "cache",
      "host": {"platform": "...", "python": "3.12.1", "git_sha": "..."},
      "entries": [
        {"name": "...", "unit": "s", "value": 1.23,
         "baseline": null, "meta": {...}},
        ...
      ]
    }

``value`` is the measurement of this run; ``baseline`` is an optional
reference number (a budget/floor the suite asserts against, ``null``
when the entry is informational); ``meta`` carries the measurement's
context (graph, batch size, methodology knobs).  ``host`` stamps where
the numbers were measured — benchmark results are only comparable
within a host, so trend tooling must partition on it.

Besides the per-suite baseline file, :func:`write_bench` appends every
run to ``benchmarks/results/history.jsonl`` (one ``repro-bench-v1``
document per line, with a ``written`` UTC timestamp), so a bench
trajectory accumulates across commits instead of each run overwriting
the last.

Measurements that are *differences* of noisy timings (A/B overhead
fractions) can come out negative when the true cost sits below the
noise floor; :func:`noise_floored` clamps them to zero and flags the
clamp in ``meta`` rather than publishing a negative cost.
"""

from __future__ import annotations

import datetime
import json
import pathlib
import platform
import subprocess
from typing import Any, Dict, List, Optional, Union

from repro.obs.check import BENCH_SCHEMA, validate_bench
from repro.obs.diff import apply_noise_floor

__all__ = [
    "BENCH_SCHEMA",
    "HISTORY_FILE",
    "entry",
    "host_stamp",
    "noise_floored",
    "write_bench",
]

HISTORY_FILE = pathlib.Path(__file__).resolve().parent / "results" / "history.jsonl"


def entry(name: str, unit: str, value: float,
          baseline: Optional[float] = None,
          **meta: Any) -> Dict[str, Any]:
    """One ``repro-bench-v1`` entry."""
    return {
        "name": name,
        "unit": unit,
        "value": value,
        "baseline": baseline,
        "meta": meta,
    }


def noise_floored(name: str, unit: str, value: float,
                  baseline: Optional[float] = None,
                  floor: float = 0.0,
                  **meta: Any) -> Dict[str, Any]:
    """Like :func:`entry`, but clamp ``value`` at ``floor``.

    For derived costs that cannot physically be negative (an overhead
    fraction, a slowdown): when the measured difference lands below
    ``floor`` it is measurement noise, so the published value is the
    floor and ``meta`` records both the raw measurement
    (``measured``) and the fact of the clamp (``noise_floored``).
    The scalar clamp itself is :func:`repro.obs.diff.apply_noise_floor`
    — the same primitive ``repro obs diff`` uses on relative deltas, so
    "what counts as noise" is defined once.
    """
    published, clamped = apply_noise_floor(value, floor)
    if clamped:
        meta = {**meta, "measured": value, "noise_floored": True}
    return entry(name, unit, published, baseline, **meta)


def _git_sha() -> Optional[str]:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        return None


def host_stamp() -> Dict[str, Optional[str]]:
    """Where this run was measured: platform, interpreter, commit."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "git_sha": _git_sha(),
    }


def write_bench(path: Union[str, pathlib.Path], suite: str,
                entries: List[Dict[str, Any]],
                history: Union[bool, str, pathlib.Path] = True) -> Dict[str, Any]:
    """Assemble, self-validate and write one baseline file.

    Also appends the document (plus a ``written`` UTC timestamp) to the
    shared history journal unless ``history`` is falsy; pass a path to
    redirect the journal (tests do).
    """
    doc = {
        "schema": BENCH_SCHEMA,
        "suite": suite,
        "host": host_stamp(),
        "entries": entries,
    }
    validate_bench(doc)  # never ship a baseline CI would reject
    pathlib.Path(path).write_text(json.dumps(doc, indent=2) + "\n")
    if history:
        history_path = HISTORY_FILE if history is True else pathlib.Path(history)
        history_path.parent.mkdir(parents=True, exist_ok=True)
        stamped = {
            **doc,
            "written": datetime.datetime.now(datetime.timezone.utc)
            .isoformat(timespec="seconds"),
        }
        with history_path.open("a") as handle:
            handle.write(json.dumps(stamped) + "\n")
    return doc
