"""Ablation: the Figure-4 structural optimisations of the new conversion.

Two design choices keep the compact HSDF small:

* exploiting matrix *sparsity* (the gray actors of Figure 4 are simply
  not created for ε entries) — always on, quantified here against the
  dense N(N+2) worst case;
* *eliding* (de)multiplexers for tokens with a single producer or
  consumer — toggleable, ablated here.

Both variants must agree on the cycle time (they realise the same
max-plus matrix).
"""

import pytest

from repro.analysis.throughput import throughput
from repro.core.hsdf_conversion import convert_to_hsdf
from repro.graphs import TABLE1_CASES


def test_elision_ablation_table(report):
    report("Mux/demux elision ablation (actor counts)")
    report(f"{'case':<24} {'N':>4} {'dense bound':>11} {'no elision':>10} {'elided':>7} {'saved':>6}")
    for case in TABLE1_CASES:
        g = case.build()
        lean = convert_to_hsdf(g, elide_multiplexers=True)
        full = convert_to_hsdf(g, elide_multiplexers=False)
        n = len(lean.token_ids)
        assert (
            throughput(lean.graph, method="hsdf").cycle_time
            == throughput(full.graph, method="hsdf").cycle_time
        )
        report(
            f"{case.name:<24} {n:>4} {n * (n + 2):>11} {full.actor_count:>10} "
            f"{lean.actor_count:>7} {full.actor_count - lean.actor_count:>6}"
        )
    report.save("elision_ablation")


@pytest.mark.parametrize("elide", [True, False], ids=["elided", "full"])
@pytest.mark.parametrize(
    "case", [c for c in TABLE1_CASES if c.index in (3, 8)], ids=lambda c: c.name
)
def test_conversion_runtime_by_variant(benchmark, case, elide):
    g = case.build()
    conv = benchmark(convert_to_hsdf, g, None, elide)
    assert conv.within_paper_bounds()
