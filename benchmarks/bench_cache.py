"""Cache/batch acceleration baseline: cold vs. warm vs. batched.

Three measurements over real suites, persisted to ``BENCH_cache.json``
at the repository root (``repro-bench-v1`` schema, see
``benchmarks/bench_common.py``) so the performance trajectory has a
baseline:

* **registry cold** — throughput of every Table-1 registry graph through
  a fresh :class:`AnalysisCache` (every lookup misses);
* **registry warm** — the same pass again (every lookup hits; the
  speedup is the price of an analysis vs. the price of a dict probe);
* **scalability suite, sequential vs. batch** — a scenario-shaped suite
  (each scalability graph appears in three structurally identical
  variants, the shape parametric sweeps produce) analysed by a plain
  cold loop and by the 4-worker batch runner, whose shared single-flight
  cache computes each distinct fingerprint once;
* **warm disk tier** — the registry again through a *cold memory cache*
  over a previously populated :class:`ResultStore`: every lookup is a
  disk hit (read + checksum + unpickle), the price a fresh process pays
  to reuse results that survived a restart.
"""

from __future__ import annotations

import pathlib
import tempfile
import time

from repro.analysis.batch import run_batch
from repro.analysis.cache import AnalysisCache
from repro.analysis.store import ResultStore
from repro.analysis.throughput import throughput
from repro.graphs import TABLE1_CASES
from repro.graphs.synthetic import regular_prefetch

from bench_common import entry, write_bench
from bench_scalability import multirate_pair

BENCH_FILE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_cache.json"


def scalability_suite():
    """Scalability graphs, three structurally identical variants each."""
    bases = [multirate_pair(scale) for scale in (8, 64, 512)]
    bases += [regular_prefetch(n) for n in (16, 64)]
    return [g.copy(f"{g.name}-v{i}") for g in bases for i in range(3)]


def measure_cache_baseline() -> dict:
    registry = [case.build() for case in TABLE1_CASES]
    cache = AnalysisCache()

    start = time.perf_counter()
    cold_report = run_batch(registry, backend="serial", cache=cache)
    cold = time.perf_counter() - start
    assert not cold_report.failures

    start = time.perf_counter()
    warm_report = run_batch(registry, backend="serial", cache=cache)
    warm = time.perf_counter() - start
    assert warm_report.cache_stats.hits == len(registry)

    suite = scalability_suite()
    start = time.perf_counter()
    for g in suite:
        throughput(g)  # cold loop: no cache at all
    sequential = time.perf_counter() - start

    batch_cache = AnalysisCache()
    batch_report = run_batch(suite, backend="thread", workers=4, cache=batch_cache)
    assert not batch_report.failures

    # Warm disk tier: publish once, then read back through a cold
    # memory cache in the same shape a restarted process would.
    with tempfile.TemporaryDirectory() as root:
        store = ResultStore(root)
        publish_report = run_batch(registry, backend="serial",
                                   cache=AnalysisCache(), store=store)
        assert publish_report.cache_stats.disk_puts == len(registry)

        disk_cache = AnalysisCache()
        start = time.perf_counter()
        disk_report = run_batch(registry, backend="serial",
                                cache=disk_cache, store=store)
        disk_warm = time.perf_counter() - start
        disk_stats = disk_report.cache_stats
        assert disk_stats.disk_hits == len(registry)

    warm_speedup = round(cold / warm, 2) if warm else float("inf")
    disk_speedup = round(cold / disk_warm, 2) if disk_warm else float("inf")
    distinct = len({g.fingerprint() for g in suite})
    return [
        entry("registry_cold_seconds", "s", round(cold, 6),
              graphs=len(registry)),
        entry("registry_warm_seconds", "s", round(warm, 6),
              graphs=len(registry)),
        entry("registry_warm_speedup", "x", warm_speedup, baseline=5.0,
              note="baseline is the asserted floor"),
        entry("suite_sequential_cold_seconds", "s", round(sequential, 6),
              jobs=len(suite), distinct_fingerprints=distinct),
        entry("suite_batch_seconds", "s", round(batch_report.duration, 6),
              backend=batch_report.backend, workers=batch_report.workers),
        entry("suite_batch_speedup", "x",
              round(sequential / batch_report.duration, 2)),
        entry("suite_batch_hit_rate", "ratio",
              round(batch_report.hit_rate, 4)),
        entry("registry_disk_warm_seconds", "s", round(disk_warm, 6),
              graphs=len(registry), disk_hits=disk_stats.disk_hits,
              note="cold memory cache over a populated ResultStore"),
        entry("registry_disk_warm_speedup", "x", disk_speedup, baseline=1.0,
              note="baseline is the asserted floor: reading a record "
                   "must beat recomputing it"),
    ]


def _by_name(entries):
    return {e["name"]: e for e in entries}


def test_cache_acceleration_baseline(report):
    entries = measure_cache_baseline()
    values = _by_name(entries)
    report("Analysis cache: cold vs. warm vs. batched (BENCH_cache.json)")
    report(f"registry ({values['registry_cold_seconds']['meta']['graphs']} "
           f"graphs): cold {values['registry_cold_seconds']['value']:.4f}s, "
           f"warm {values['registry_warm_seconds']['value']:.4f}s "
           f"({values['registry_warm_speedup']['value']:.0f}x)")
    suite_meta = values['suite_sequential_cold_seconds']['meta']
    report(f"scalability suite ({suite_meta['jobs']} jobs, "
           f"{suite_meta['distinct_fingerprints']} distinct): "
           f"sequential cold "
           f"{values['suite_sequential_cold_seconds']['value']:.4f}s, "
           f"batch x4 {values['suite_batch_seconds']['value']:.4f}s "
           f"({values['suite_batch_speedup']['value']:.2f}x, "
           f"hit rate {values['suite_batch_hit_rate']['value']:.0%})")
    disk_meta = values['registry_disk_warm_seconds']['meta']
    report(f"disk tier ({disk_meta['disk_hits']} disk hits): warm "
           f"{values['registry_disk_warm_seconds']['value']:.4f}s "
           f"({values['registry_disk_warm_speedup']['value']:.1f}x over "
           f"cold compute)")
    write_bench(BENCH_FILE, "cache", entries)
    report(f"written to {BENCH_FILE.name}")
    report.save("cache_acceleration")

    # Acceptance floors: warm >= 5x cold; batch beats the cold loop;
    # a disk hit beats recomputing the analysis.
    assert values["registry_warm_speedup"]["value"] >= 5.0
    assert (values["suite_batch_seconds"]["value"]
            < values["suite_sequential_cold_seconds"]["value"])
    assert values["registry_disk_warm_speedup"]["value"] >= 1.0


if __name__ == "__main__":  # standalone: regenerate the JSON baseline
    import json

    doc = write_bench(BENCH_FILE, "cache", measure_cache_baseline())
    print(json.dumps(doc, indent=2))
