"""Cache/batch acceleration baseline: cold vs. warm vs. batched.

Three measurements over real suites, persisted to ``BENCH_cache.json``
at the repository root so the performance trajectory has a baseline:

* **registry cold** — throughput of every Table-1 registry graph through
  a fresh :class:`AnalysisCache` (every lookup misses);
* **registry warm** — the same pass again (every lookup hits; the
  speedup is the price of an analysis vs. the price of a dict probe);
* **scalability suite, sequential vs. batch** — a scenario-shaped suite
  (each scalability graph appears in three structurally identical
  variants, the shape parametric sweeps produce) analysed by a plain
  cold loop and by the 4-worker batch runner, whose shared single-flight
  cache computes each distinct fingerprint once.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.analysis.batch import run_batch
from repro.analysis.cache import AnalysisCache
from repro.analysis.throughput import throughput
from repro.graphs import TABLE1_CASES
from repro.graphs.synthetic import regular_prefetch

from bench_scalability import multirate_pair

BENCH_FILE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_cache.json"


def scalability_suite():
    """Scalability graphs, three structurally identical variants each."""
    bases = [multirate_pair(scale) for scale in (8, 64, 512)]
    bases += [regular_prefetch(n) for n in (16, 64)]
    return [g.copy(f"{g.name}-v{i}") for g in bases for i in range(3)]


def measure_cache_baseline() -> dict:
    registry = [case.build() for case in TABLE1_CASES]
    cache = AnalysisCache()

    start = time.perf_counter()
    cold_report = run_batch(registry, backend="serial", cache=cache)
    cold = time.perf_counter() - start
    assert not cold_report.failures

    start = time.perf_counter()
    warm_report = run_batch(registry, backend="serial", cache=cache)
    warm = time.perf_counter() - start
    assert warm_report.cache_stats.hits == len(registry)

    suite = scalability_suite()
    start = time.perf_counter()
    for g in suite:
        throughput(g)  # cold loop: no cache at all
    sequential = time.perf_counter() - start

    batch_cache = AnalysisCache()
    batch_report = run_batch(suite, backend="thread", workers=4, cache=batch_cache)
    assert not batch_report.failures

    return {
        "registry": {
            "graphs": len(registry),
            "cold_seconds": round(cold, 6),
            "warm_seconds": round(warm, 6),
            "warm_speedup": round(cold / warm, 2) if warm else float("inf"),
        },
        "scalability_suite": {
            "jobs": len(suite),
            "distinct_fingerprints": len({g.fingerprint() for g in suite}),
            "sequential_cold_seconds": round(sequential, 6),
            "batch_4workers_seconds": round(batch_report.duration, 6),
            "batch_speedup": round(sequential / batch_report.duration, 2),
            "batch_hit_rate": round(batch_report.hit_rate, 4),
            "backend": batch_report.backend,
            "workers": batch_report.workers,
        },
    }


def test_cache_acceleration_baseline(report):
    data = measure_cache_baseline()
    registry, suite = data["registry"], data["scalability_suite"]
    report("Analysis cache: cold vs. warm vs. batched (BENCH_cache.json)")
    report(f"registry ({registry['graphs']} graphs): "
           f"cold {registry['cold_seconds']:.4f}s, "
           f"warm {registry['warm_seconds']:.4f}s "
           f"({registry['warm_speedup']:.0f}x)")
    report(f"scalability suite ({suite['jobs']} jobs, "
           f"{suite['distinct_fingerprints']} distinct): "
           f"sequential cold {suite['sequential_cold_seconds']:.4f}s, "
           f"batch x4 {suite['batch_4workers_seconds']:.4f}s "
           f"({suite['batch_speedup']:.2f}x, "
           f"hit rate {suite['batch_hit_rate']:.0%})")
    BENCH_FILE.write_text(json.dumps(data, indent=2) + "\n")
    report(f"written to {BENCH_FILE.name}")
    report.save("cache_acceleration")

    # Acceptance floors: warm >= 5x cold; batch beats the cold loop.
    assert registry["warm_speedup"] >= 5.0
    assert suite["batch_4workers_seconds"] < suite["sequential_cold_seconds"]


if __name__ == "__main__":  # standalone: regenerate the JSON baseline
    baseline = measure_cache_baseline()
    BENCH_FILE.write_text(json.dumps(baseline, indent=2) + "\n")
    print(json.dumps(baseline, indent=2))
