"""Experiment E12: abstraction quality — regular vs arbitrary graphs.

Section 7 of the paper deliberately shows no abstraction numbers on
arbitrary graphs: "Results for arbitrary graphs would not be good and
regular graphs can be constructed for which the abstraction returns
small graphs with a perfectly accurate prediction of performance."
This bench *measures* that claim: the relative error of structurally
discovered abstractions on (a) the regular families — small and shrinking
— versus (b) random irregular graphs — large and erratic (when a valid
grouping exists at all).
"""

import random
from fractions import Fraction

import pytest

from repro.core.conservativity import verify_abstraction
from repro.core.grouping import discover_abstraction
from repro.errors import NoAbstractionFoundError, NotAbstractableError
from repro.graphs.random_sdf import random_live_hsdf
from repro.graphs.synthetic import (
    regular_prefetch,
    regular_prefetch_abstraction,
    remote_memory_abstraction,
    remote_memory_access,
)


def test_regular_graphs_tight(report):
    report("Abstraction quality on regular graphs (relative cycle-time error)")
    report(f"{'family':<18} {'n':>5} {'error':>10}")
    for n in (8, 32, 128):
        cert = verify_abstraction(regular_prefetch(n), regular_prefetch_abstraction(n))
        report(f"{'prefetch':<18} {n:>5} {float(cert.relative_error):>10.4f}")
        assert cert.relative_error < Fraction(1, 4)
    for n in (8, 32, 128):
        cert = verify_abstraction(
            remote_memory_access(n),
            remote_memory_abstraction(n),
            check_dominance=(n <= 32),
        )
        report(f"{'remote-memory':<18} {n:>5} {float(cert.relative_error):>10.4f}")
        assert cert.relative_error == 0
    report.save("abstraction_regular")


def test_arbitrary_graphs_poor(report):
    report("Abstraction quality on arbitrary graphs (structural discovery)")
    report(f"{'seed':>5} {'groups':>7} {'error':>12}")
    errors = []
    attempted = 0
    for seed in range(30):
        rng = random.Random(seed)
        g = random_live_hsdf(rng, n_actors=8, extra_edges=6, max_time=9)
        attempted += 1
        try:
            abstraction = discover_abstraction(g, strategy="structural")
            cert = verify_abstraction(g, abstraction)
        except (NoAbstractionFoundError, NotAbstractableError):
            report(f"{seed:>5} {'—':>7} {'(no grouping)':>12}")
            continue
        assert cert.conservative  # Theorem 1 always holds...
        if cert.relative_error is None:
            report(f"{seed:>5} {len(abstraction.groups()):>7} {'(deadlocked)':>12}")
            errors.append(None)
            continue
        errors.append(cert.relative_error)
        report(
            f"{seed:>5} {len(abstraction.groups()):>7} "
            f"{float(cert.relative_error):>12.4f}"
        )
    useful = [e for e in errors if e is not None]
    if useful:
        worst = max(useful)
        report(f"worst error over {attempted} random graphs: {float(worst):.3f} "
               "(paper: 'results for arbitrary graphs would not be good')")
    report.save("abstraction_arbitrary")


@pytest.mark.parametrize("n", [32, 128])
def test_verification_runtime_regular(benchmark, n):
    g = regular_prefetch(n)
    abstraction = regular_prefetch_abstraction(n)
    cert = benchmark(verify_abstraction, g, abstraction)
    assert cert.conservative
