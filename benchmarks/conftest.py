"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it prints
the rows/series to stdout (run with ``pytest benchmarks/ -s`` to watch)
and appends them to ``benchmarks/results/<experiment>.txt`` so
EXPERIMENTS.md can quote them.  pytest-benchmark handles the wall-clock
measurements (run with ``--benchmark-only``).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _history_lines(path: pathlib.Path) -> list[str]:
    if not path.exists():
        return []
    return [line for line in path.read_text().splitlines() if line.strip()]


@pytest.fixture(autouse=True)
def history_feed_guard():
    """Every suite that (re)writes a root ``BENCH_*.json`` must also
    append the run to the shared history journal — the regression
    sentinel (``repro obs regress``) needs a uniform feed, so a bench
    that publishes a baseline without feeding the history is a bug this
    fixture turns into a test failure.  The appended lines must be
    valid ``repro-bench-v1`` documents covering the suites of the
    changed files (``BENCH_<suite>.json`` naming convention)."""
    import json

    from bench_common import HISTORY_FILE
    from repro.obs.check import validate_bench

    root = pathlib.Path(__file__).resolve().parent.parent

    def snapshot() -> dict:
        return {p: p.stat().st_mtime_ns for p in root.glob("BENCH_*.json")}

    before = snapshot()
    lines_before = len(_history_lines(HISTORY_FILE))
    yield
    after = snapshot()
    changed = sorted(p for p, mtime in after.items()
                     if before.get(p) != mtime)
    if not changed:
        return
    lines = _history_lines(HISTORY_FILE)
    grown = len(lines) - lines_before
    assert grown >= len(changed), (
        f"{[p.name for p in changed]} were (re)written but history.jsonl "
        f"gained only {grown} line(s): every write_bench must feed the "
        "regression sentinel's journal (do not pass history=False)"
    )
    appended = [json.loads(line) for line in lines[-grown:]]
    for doc in appended:
        validate_bench(doc)
    suites = {doc["suite"] for doc in appended}
    expected = {p.name[len("BENCH_"):-len(".json")] for p in changed}
    assert expected <= suites, (
        f"history.jsonl gained suites {sorted(suites)} but the changed "
        f"baseline files imply {sorted(expected)}"
    )


@pytest.fixture
def report():
    """A tiny sink: collects lines, prints them, writes them to results/."""

    class Report:
        def __init__(self):
            self.lines: list[str] = []
            self.name: str | None = None

        def __call__(self, line: str = "") -> None:
            self.lines.append(line)
            print(line)

        def save(self, name: str) -> None:
            self.name = name
            RESULTS_DIR.mkdir(exist_ok=True)
            (RESULTS_DIR / f"{name}.txt").write_text("\n".join(self.lines) + "\n")

    return Report()
