"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it prints
the rows/series to stdout (run with ``pytest benchmarks/ -s`` to watch)
and appends them to ``benchmarks/results/<experiment>.txt`` so
EXPERIMENTS.md can quote them.  pytest-benchmark handles the wall-clock
measurements (run with ``--benchmark-only``).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report():
    """A tiny sink: collects lines, prints them, writes them to results/."""

    class Report:
        def __init__(self):
            self.lines: list[str] = []
            self.name: str | None = None

        def __call__(self, line: str = "") -> None:
            self.lines.append(line)
            print(line)

        def save(self, name: str) -> None:
            self.name = name
            RESULTS_DIR.mkdir(exist_ok=True)
            (RESULTS_DIR / f"{name}.txt").write_text("\n".join(self.lines) + "\n")

    return Report()
