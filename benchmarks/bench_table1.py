"""Experiment E1/E7: Table 1 and Figure 6 — HSDF transformations compared.

For each of the paper's eight applications: the traditional conversion's
actor count (exactly Σγ — matched exactly by the reconstructions), the
new conversion's actor count, and their ratio; Figure 6 is the same data
as a log-scale series.  pytest-benchmark times the new conversion — the
paper reports "a few milliseconds".
"""

import pytest

from repro.core.hsdf_conversion import convert_to_hsdf
from repro.graphs import TABLE1_CASES
from repro.sdf.repetition import iteration_length
from repro.sdf.transform import traditional_hsdf


def test_table1_rows(report):
    report("Table 1: HSDF Transformations Compared")
    report(f"{'test case':<26} {'traditional':>11} {'new':>6} {'ratio':>8}"
           f" {'paper trad.':>11} {'paper new':>9} {'paper ratio':>11}")
    for case in TABLE1_CASES:
        g = case.build()
        traditional = iteration_length(g)
        compact = convert_to_hsdf(g)
        ratio = traditional / compact.actor_count
        report(
            f"{f'{case.index}. {case.name}':<26} {traditional:>11} "
            f"{compact.actor_count:>6} {ratio:>8.2f} "
            f"{case.paper_traditional:>11} {case.paper_new:>9} {case.paper_ratio:>11.2f}"
        )
        # The traditional column must match the paper exactly.
        assert traditional == case.paper_traditional
        # The new column must preserve the paper's verdict per row.
        if case.paper_new < case.paper_traditional:
            assert compact.actor_count < traditional
        else:
            assert compact.actor_count > traditional
    report.save("table1")


def test_figure6_series(report):
    import math

    report("Figure 6: actor counts per test case (log scale, T=traditional, N=new)")
    report(f"{'case':>5} {'traditional':>12} {'new':>6}   1        10       100      1000     10000")
    for case in TABLE1_CASES:
        g = case.build()
        traditional = iteration_length(g)
        compact = convert_to_hsdf(g).actor_count

        def column(value: int) -> int:
            return round(math.log10(max(value, 1)) * 9)

        width = column(20000) + 1
        lane = [" "] * width
        lane[column(traditional)] = "T"
        lane[column(compact)] = "N" if lane[column(compact)] == " " else "*"
        report(f"{case.index:>5} {traditional:>12} {compact:>6}   |{''.join(lane)}|")
    report.save("figure6")


@pytest.mark.parametrize("case", TABLE1_CASES, ids=lambda c: c.name)
def test_new_conversion_runtime(benchmark, case):
    """E7: 'The run-time of the algorithms is a few milliseconds.'"""
    g = case.build()
    result = benchmark(convert_to_hsdf, g)
    assert result.within_paper_bounds()


@pytest.mark.parametrize(
    "case",
    [c for c in TABLE1_CASES if c.paper_traditional <= 1200],
    ids=lambda c: c.name,
)
def test_traditional_conversion_runtime(benchmark, case):
    """Baseline timing: the traditional expansion on the smaller cases."""
    g = case.build()
    result = benchmark(traditional_hsdf, g)
    assert result.actor_count() == case.paper_traditional
