"""Experiment E9: MCM/MCR solver ablation.

The analysis back-end can use any of four exact solvers (the family
surveyed in the paper's reference [5], Dasdan-Irani-Gupta).  This bench
times them head to head on the cycle-ratio instances that actually arise
in this library: the compact HSDFs of the Table-1 applications and the
precedence graphs of their iteration matrices.
"""

import pytest

from repro.analysis.throughput import hsdf_cycle_ratio_graph
from repro.core.hsdf_conversion import convert_to_hsdf
from repro.graphs import TABLE1_CASES
from repro.maxplus.spectral import precedence_graph
from repro.mcm import brute_force_mcr, howard_mcr, karp_mcm, lawler_mcr, yto_mcm

#: The instances: compact-HSDF cycle-ratio graphs per application.
INSTANCES = {}
MATRICES = {}
for _case in TABLE1_CASES:
    _conv = convert_to_hsdf(_case.build())
    INSTANCES[_case.name] = hsdf_cycle_ratio_graph(_conv.graph)
    MATRICES[_case.name] = precedence_graph(_conv.matrix)

RATIO_SOLVERS = {"howard": howard_mcr, "lawler": lawler_mcr}
MEAN_SOLVERS = {"karp": karp_mcm, "yto": yto_mcm, "howard": howard_mcr}


def test_solver_agreement(report):
    report("MCR solver agreement on the compact HSDF instances")
    report(f"{'case':<24} {'howard':>10} {'lawler':>10}")
    for name, graph in INSTANCES.items():
        values = {label: solver(graph).value for label, solver in RATIO_SOLVERS.items()}
        assert len(set(values.values())) == 1
        report(f"{name:<24} {str(values['howard']):>10} {str(values['lawler']):>10}")
    report.save("mcm_agreement")


def test_mean_solver_agreement(report):
    report("MCM solver agreement on the iteration-matrix precedence graphs")
    for name, graph in MATRICES.items():
        values = {label: solver(graph).value for label, solver in MEAN_SOLVERS.items()}
        assert len(set(values.values())) == 1
        report(f"{name:<24} λ = {values['karp']}")
    report.save("mcm_mean_agreement")


@pytest.mark.parametrize("case", TABLE1_CASES, ids=lambda c: c.name)
@pytest.mark.parametrize("solver", sorted(RATIO_SOLVERS), ids=str)
def test_ratio_solver_runtime(benchmark, solver, case):
    graph = INSTANCES[case.name]
    benchmark(RATIO_SOLVERS[solver], graph)


@pytest.mark.parametrize("case", TABLE1_CASES, ids=lambda c: c.name)
@pytest.mark.parametrize("solver", sorted(MEAN_SOLVERS), ids=str)
def test_mean_solver_runtime(benchmark, solver, case):
    graph = MATRICES[case.name]
    benchmark(MEAN_SOLVERS[solver], graph)
