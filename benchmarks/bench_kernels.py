"""Kernel baseline: vectorized numpy backends vs the exact reference.

Four measurements, persisted to ``BENCH_kernels.json`` at the
repository root (``repro-bench-v1`` schema, see
``benchmarks/bench_common.py``):

* **Karp MCM** on a large random strongly connected unit-transit graph
  (the scalability corpus the symbolic back-end faces after Algorithm-1
  conversion) — ``karp_mcm_numpy`` vs ``karp_mcm``;
* **Howard MCR** on a large random transit graph — ``howard_mcr_numpy``
  vs ``howard_mcr``;
* **dense max-plus product** — broadcast-add matmul vs
  :meth:`MaxPlusMatrix.multiply`;
* **self-timed simulation** of the registry graph with the busiest
  state space the exact engine still explores quickly — vectorized
  per-instant firing passes vs the reference event loop.

Every timed pair first asserts *bit-identical* results (the kernels'
whole contract); the speedup entries carry their asserted floors as
``baseline`` so `repro.obs.check` flags a regression below them.  The
headline criterion — >= 10x on the large-random/scalability corpus —
is asserted on the Karp and max-plus entries; Howard (certification
amortises more slowly) and simulation assert a >= 2x floor and report
the measured figure honestly.
"""

from __future__ import annotations

import pathlib
import random
import time
from fractions import Fraction

from bench_common import entry, write_bench
from repro.graphs import TABLE1_CASES
from repro.kernels.maxplus import from_dense, mp_matmul, to_dense
from repro.kernels.mcm import howard_mcr_numpy, karp_mcm_numpy
from repro.kernels.simulation import simulation_throughput_numpy
from repro.maxplus.algebra import EPSILON
from repro.maxplus.matrix import MaxPlusMatrix
from repro.mcm.graphlib import RatioGraph
from repro.mcm.howard import howard_mcr
from repro.mcm.karp import karp_mcm
from repro.sdf.simulation import simulation_throughput

BENCH_FILE = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_kernels.json"
)

#: Repeats per timing; min-of-N suppresses scheduler noise.
REPEATS = 3

#: Asserted speedup floors (also the ``baseline`` of each entry).
KARP_FLOOR = 10.0
MAXPLUS_FLOOR = 10.0
HOWARD_FLOOR = 2.0
SIMULATION_FLOOR = 2.0

#: The registry graph timed for the simulation kernel: busiest
#: state space among the ones the exact engine explores in well under
#: a second (keeps the suite fast and the timing stable).
SIMULATION_CASE = "mp3 dec. block par."


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _random_ratio_graph(nodes: int, edges: int, seed: int,
                        unit_transit: bool) -> RatioGraph:
    """Strongly connected (ring + chords) with drawn integer weights.

    Chord transits are drawn from 1..3 when ``unit_transit`` is off —
    never 0, so Howard's zero-transit-cycle precondition always holds.
    """
    rng = random.Random(seed)
    g = RatioGraph()
    for i in range(nodes):
        g.add_node(i)

    def transit() -> int:
        return 1 if unit_transit else rng.randint(1, 3)

    for i in range(nodes):
        g.add_edge(i, (i + 1) % nodes, Fraction(rng.randint(1, 50)),
                   transit(), key=f"ring{i}")
    for j in range(edges - nodes):
        g.add_edge(rng.randrange(nodes), rng.randrange(nodes),
                   Fraction(rng.randint(1, 50)), transit(), key=f"chord{j}")
    return g


def measure_karp(nodes: int = 300, edges: int = 1500) -> dict:
    graph = _random_ratio_graph(nodes, edges, seed=20090726,
                                unit_transit=True)
    exact = karp_mcm(graph)
    vectorized = karp_mcm_numpy(graph)
    assert vectorized.value == exact.value  # bit identity first

    exact_seconds = _best_of(REPEATS, lambda: karp_mcm(graph))
    numpy_seconds = _best_of(REPEATS, lambda: karp_mcm_numpy(graph))
    return {
        "nodes": nodes, "edges": edges,
        "value": str(exact.value),
        "exact_seconds": round(exact_seconds, 6),
        "numpy_seconds": round(numpy_seconds, 6),
        "speedup": round(exact_seconds / numpy_seconds, 2),
    }


def measure_howard(nodes: int = 1200, edges: int = 6000) -> dict:
    graph = _random_ratio_graph(nodes, edges, seed=20090726,
                                unit_transit=False)
    exact = howard_mcr(graph)
    vectorized = howard_mcr_numpy(graph)
    assert vectorized.value == exact.value

    exact_seconds = _best_of(REPEATS, lambda: howard_mcr(graph))
    numpy_seconds = _best_of(REPEATS, lambda: howard_mcr_numpy(graph))
    return {
        "nodes": nodes, "edges": edges,
        "value": str(exact.value),
        "exact_seconds": round(exact_seconds, 6),
        "numpy_seconds": round(numpy_seconds, 6),
        "speedup": round(exact_seconds / numpy_seconds, 2),
    }


def measure_maxplus(size: int = 100, density: float = 0.6) -> dict:
    rng = random.Random(20090726)
    matrix = MaxPlusMatrix([
        [rng.randint(0, 10 ** 6) if rng.random() < density else EPSILON
         for _ in range(size)]
        for _ in range(size)
    ])
    dense = to_dense(matrix)
    assert from_dense(mp_matmul(dense, dense)).rows == \
        matrix.multiply(matrix).rows

    exact_seconds = _best_of(REPEATS, lambda: matrix.multiply(matrix))
    numpy_seconds = _best_of(
        max(REPEATS, 10), lambda: mp_matmul(dense, dense))
    return {
        "size": size, "density": density,
        "exact_seconds": round(exact_seconds, 6),
        "numpy_seconds": round(numpy_seconds, 6),
        "speedup": round(exact_seconds / numpy_seconds, 2),
    }


def measure_simulation() -> dict:
    case = next(c for c in TABLE1_CASES if c.name == SIMULATION_CASE)
    graph = case.build()
    exact = simulation_throughput(graph)
    vectorized = simulation_throughput_numpy(graph)
    assert vectorized.period == exact.period
    assert vectorized.firings_per_period == exact.firings_per_period

    exact_seconds = _best_of(REPEATS, lambda: simulation_throughput(graph))
    numpy_seconds = _best_of(
        REPEATS, lambda: simulation_throughput_numpy(graph))
    return {
        "graph": graph.name,
        "period": str(exact.period),
        "exact_seconds": round(exact_seconds, 6),
        "numpy_seconds": round(numpy_seconds, 6),
        "speedup": round(exact_seconds / numpy_seconds, 2),
    }


def _entries(karp: dict, howard: dict, maxplus: dict, simulation: dict) -> list:
    return [
        entry("karp_speedup", "x", karp["speedup"], baseline=KARP_FLOOR,
              nodes=karp["nodes"], edges=karp["edges"],
              note="baseline is the asserted floor"),
        entry("karp_exact_seconds", "s", karp["exact_seconds"]),
        entry("karp_numpy_seconds", "s", karp["numpy_seconds"]),
        entry("howard_speedup", "x", howard["speedup"],
              baseline=HOWARD_FLOOR, nodes=howard["nodes"],
              edges=howard["edges"],
              note="baseline is the asserted floor"),
        entry("howard_exact_seconds", "s", howard["exact_seconds"]),
        entry("howard_numpy_seconds", "s", howard["numpy_seconds"]),
        entry("maxplus_matmul_speedup", "x", maxplus["speedup"],
              baseline=MAXPLUS_FLOOR, size=maxplus["size"],
              density=maxplus["density"],
              note="baseline is the asserted floor"),
        entry("maxplus_matmul_exact_seconds", "s", maxplus["exact_seconds"]),
        entry("maxplus_matmul_numpy_seconds", "s", maxplus["numpy_seconds"]),
        entry("simulation_speedup", "x", simulation["speedup"],
              baseline=SIMULATION_FLOOR, graph=simulation["graph"],
              period=simulation["period"],
              note="baseline is the asserted floor"),
        entry("simulation_exact_seconds", "s", simulation["exact_seconds"]),
        entry("simulation_numpy_seconds", "s", simulation["numpy_seconds"]),
    ]


def test_kernel_baseline(report):
    karp = measure_karp()
    howard = measure_howard()
    maxplus = measure_maxplus()
    simulation = measure_simulation()

    report("Kernels: numpy vs exact, bit-identical results "
           "(BENCH_kernels.json)")
    report(f"Karp MCM, random n={karp['nodes']} m={karp['edges']}: "
           f"exact {karp['exact_seconds']:.3f}s, "
           f"numpy {karp['numpy_seconds']:.3f}s "
           f"({karp['speedup']:.1f}x, floor {KARP_FLOOR:.0f}x)")
    report(f"Howard MCR, random n={howard['nodes']} m={howard['edges']}: "
           f"exact {howard['exact_seconds']:.3f}s, "
           f"numpy {howard['numpy_seconds']:.3f}s "
           f"({howard['speedup']:.1f}x, floor {HOWARD_FLOOR:.0f}x)")
    report(f"max-plus matmul {maxplus['size']}x{maxplus['size']}: "
           f"exact {maxplus['exact_seconds']:.3f}s, "
           f"numpy {maxplus['numpy_seconds']:.4f}s "
           f"({maxplus['speedup']:.0f}x, floor {MAXPLUS_FLOOR:.0f}x)")
    report(f"self-timed simulation of {simulation['graph']}: "
           f"exact {simulation['exact_seconds']:.3f}s, "
           f"numpy {simulation['numpy_seconds']:.3f}s "
           f"({simulation['speedup']:.1f}x, floor {SIMULATION_FLOOR:.0f}x)")
    write_bench(BENCH_FILE, "kernels",
                _entries(karp, howard, maxplus, simulation))
    report(f"written to {BENCH_FILE.name}")
    report.save("kernels")

    # Acceptance: the scalability corpus clears the 10x criterion and
    # nothing regresses below its floor.
    assert karp["speedup"] >= KARP_FLOOR
    assert maxplus["speedup"] >= MAXPLUS_FLOOR
    assert howard["speedup"] >= HOWARD_FLOOR
    assert simulation["speedup"] >= SIMULATION_FLOOR


if __name__ == "__main__":  # standalone: regenerate the JSON baseline
    import json

    doc = write_bench(
        BENCH_FILE, "kernels",
        _entries(measure_karp(), measure_howard(), measure_maxplus(),
                 measure_simulation()),
    )
    print(json.dumps(doc, indent=2))
